(** Deterministic fault injection for the serving layer.

    The paper's machines are unreliable ([p_ij] failure probabilities);
    this module holds the serving layer to the same standard by letting
    tests, cram sessions and benchmarks inject the failures the service
    claims to survive: worker crashes, transient engine failures, wedged
    Monte-Carlo trials, a slow consumer, and slow or truncated transport
    lines.

    Injection is {e deterministic}: whether a fault fires at a given
    {!site} is a pure function of [(spec.seed, site, key)], where [key]
    identifies the event (a request's sequence number, a retry attempt,
    an input line number). Determinism is what makes chaos testable —
    the same spec over the same workload injects the same faults no
    matter how many worker domains race on it, so a test can predict
    exactly which requests crash, and `dune runtest` can exercise every
    failure path reproducibly (the CI matrix varies [SUU_FAULT_SEED] to
    sweep different fault placements over the same structural
    assertions). *)

(** Where a fault can be injected, and what firing means there:

    - [Crash]: the worker domain raises {!Injected_crash} right after
      picking the request up — an uncaught exception escaping the
      request handler, exercising supervision. Keyed by request seq.
    - [Transient]: request execution raises [Transient_failure] — a
      retryable fault class (think a flaky backend), exercising the
      retry/backoff policy. Keyed by {!attempt_key} (seq, attempt).
    - [Stall]: the first Monte-Carlo trial of an estimate sleeps
      [stall_ms] (a wedged trial), exercising deadline enforcement
      mid-request. Keyed by request seq.
    - [Slow]: the transport delays delivery of an input line by
      [slow_ms]. Keyed by line number.
    - [Truncate]: the transport delivers only the first half of an
      input line (a torn read), which must surface as a structured
      parse error. Keyed by line number.
    - [Queue_delay]: a consumer sleeps [queue_ms] before popping (a
      slow worker), widening race windows. Keyed by a pop counter.
    - [Kill]: whole-process loss. The in-process service never fires
      this site itself; the sharding coordinator draws on it per
      dispatched job and SIGKILLs (or abruptly disconnects) the target
      worker process when it fires, exercising shard death, sub-job
      re-dispatch and degraded service. Keyed by a dispatch counter.
    - [Refuse]: a TCP worker rejects an incoming connection right after
      accepting it (a refused socket), exercising the client's
      connect-retry/backoff path. Keyed by a connection counter.
    - [Tear]: a TCP worker tears the connection down abruptly instead of
      writing a response line (a torn socket mid-stream), exercising the
      client's reconnect and idempotent re-send. Keyed by the response
      line counter.
    - [Sock_stall]: a TCP worker sleeps [sock_stall_ms] before writing a
      response line (a stalled socket), exercising the client's read
      timeout. Keyed by the response line counter. *)
type site =
  | Crash
  | Transient
  | Stall
  | Slow
  | Truncate
  | Queue_delay
  | Kill
  | Refuse
  | Tear
  | Sock_stall

type spec = {
  seed : int;
  crash : float;  (** per-request probability of a worker crash *)
  transient : float;  (** per-attempt probability of a transient failure *)
  stall : float;  (** per-request probability of a stalled trial *)
  stall_ms : float;  (** stall duration *)
  slow : float;  (** per-line probability of slow transport delivery *)
  slow_ms : float;  (** transport delay *)
  truncate : float;  (** per-line probability of a truncated line *)
  queue_delay : float;  (** per-pop probability of a slow consumer *)
  queue_ms : float;  (** slow-consumer delay *)
  kill : float;  (** per-dispatch probability of killing a worker process *)
  refuse : float;  (** per-connection probability of refusing a TCP accept *)
  tear : float;  (** per-response probability of tearing the TCP socket *)
  sock_stall : float;  (** per-response probability of a stalled socket *)
  sock_stall_ms : float;  (** socket stall duration *)
}

val none : spec
(** All rates zero: no injection. The production default. *)

val is_none : spec -> bool
(** [true] iff every rate is zero (durations are ignored). *)

val of_string : ?default_seed:int -> string -> (spec, string) result
(** Parse a spec from a comma-separated [key=value] list, e.g.
    ["seed=7,crash=0.01,transient=0.1,stall=0.05,stall_ms=20"]. Keys are
    the record fields; omitted rates are zero, omitted durations take
    small defaults, and an omitted seed takes [default_seed]
    (default 1) — the [suu serve] CLI passes [SUU_FAULT_SEED] there.
    Unknown keys, unparseable values and out-of-range rates are
    [Error]. The empty string is {!none}. *)

val to_string : spec -> string
(** Round-trips through {!of_string}; zero rates are omitted. *)

exception Injected_crash
(** The injected worker-crash exception ([Crash] site). *)

exception Transient_failure of string
(** A retryable fault ([Transient] site). The service retries these with
    capped exponential backoff; other exceptions are not retried. *)

val fires : spec -> site -> key:int -> bool
(** Whether the fault at [site] fires for event [key] — a pure function
    of [(spec.seed, site, key)]; rate 0 never fires, rate 1 always. *)

val attempt_key : seq:int -> attempt:int -> int
(** Key for per-attempt sites: distinct attempts of one request must
    draw independent faults (else a transient fault would be permanent
    and retries could never succeed). *)

val jitter : spec -> key:int -> float
(** Deterministic uniform draw in [0, 1) for event [key] — the backoff
    jitter source, so even retry timing is reproducible under test. *)
