(** TCP transport for the serving layer.

    Newline-delimited line framing over a socket — the same wire
    protocol the stdio transport speaks, so a worker behind
    [suu serve --listen] answers byte-identically to one behind a pipe.
    This module owns the {e listener} side (binding, accepting, running
    one {!Service.serve} instance per connection, injecting the
    connection-level fault sites); the {e connecting} side, with its
    reconnect/backoff and idempotent re-send policy, lives in the shard
    client ({!Suu_shard.Client}). *)

val parse_addr : string -> (Unix.inet_addr * int, string) result
(** Parse ["host:port"], [":port"] or bare ["port"]. The host defaults
    to [127.0.0.1]; port [0] asks the kernel for a free port. *)

val addr_to_string : Unix.sockaddr -> string
(** Render as ["host:port"]. *)

val listen : string -> (Unix.file_descr * string, string) result
(** Bind + listen on a {!parse_addr} address. Returns the listening
    socket and the actual bound address (resolving port [0]) — the
    worker announces this so a coordinator spawning [--listen 127.0.0.1:0]
    workers learns where to connect. *)

(** {2 Line-framed connections}

    Shared by both ends: a buffered reader that reassembles
    newline-framed lines from socket reads, and a write that loops over
    short writes. *)

type conn

val conn_of_fd : Unix.file_descr -> conn

val recv_line : conn -> string option
(** Next framed line, or [None] on clean EOF (a trailing unterminated
    fragment is dropped). Read errors — connection reset, or a read
    timeout when [SO_RCVTIMEO] is armed — raise [Unix.Unix_error] for
    the caller's reconnect policy to interpret. *)

val send_line : conn -> string -> unit
(** Write [line ^ "\n"], looping over short writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE] with SIGPIPE ignored) on a dead
    peer. *)

val shutdown_send : conn -> unit
(** Half-close: signal EOF to the peer while still reading responses —
    the socket equivalent of closing a pipe child's stdin. Errors are
    swallowed (the peer may already be gone). *)

val shutdown_all : conn -> unit
(** Shut down both directions without closing the descriptor. Wakes a
    reader blocked on this connection (it sees EOF/reset) while keeping
    the fd number reserved until {!close} — so a concurrent writer
    cannot race a recycled descriptor. Errors are swallowed. *)

val tear : conn -> unit
(** Destroy the connection abruptly (linger-0 close: RST where the
    platform supports it). Used by the [Tear] fault site and by
    kill-style teardown. Idempotent; errors are swallowed. *)

val close : conn -> unit
(** Close exactly once — {!tear} and [close] after either is a no-op,
    so a recycled descriptor number is never closed twice. *)

val wake : string -> unit
(** Dial-and-drop a throwaway connection to the address: pops a
    {!serve_connections} loop blocked in accept so it re-checks its
    [stopping] flag. (Closing a listening socket from another thread
    does not wake a blocked accept on Linux.) Errors are swallowed. *)

(** {2 The worker's accept loop} *)

val serve_connections :
  ?max_conns:int ->
  ?stopping:(unit -> bool) ->
  on_report:(Service.report -> unit) ->
  Service.config ->
  Unix.file_descr ->
  unit
(** Accept connections sequentially and run one {!Service.serve}
    instance per connection, calling [on_report] after each. Faults
    from [cfg.fault]: [Refuse] (keyed by a connection counter) tears a
    connection down right after accept; [Tear] and [Sock_stall] (keyed
    by a response-line counter that continues across connections, so a
    reconnecting client cannot re-draw the schedule that tore its first
    connection) are applied on the response path. [max_conns = 0]
    (default) accepts until [stopping] turns true — flip the flag, then
    {!wake} the listener to pop the blocked accept. Closes the
    listening socket on exit (unless it was already closed under the
    loop, which is also detected and treated as a stop).

    Note each connection is a fresh service instance: worker-side stats
    and cache reset per connection. A respawned or reconnected shard
    therefore restarts its counters at zero — the coordinator's merge
    layer must tolerate that (see {!Obs.Counters.merge_snapshots}). *)
