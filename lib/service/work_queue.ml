type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  buf : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable hwm : int;
  on_pop : unit -> unit;
}

let create ?(on_pop = fun () -> ()) ~capacity () =
  if capacity < 1 then invalid_arg "Work_queue.create: capacity < 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    buf = Queue.create ();
    capacity;
    closed = false;
    hwm = 0;
    on_pop;
  }

let with_lock q f =
  Mutex.lock q.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.lock) f

let push q x =
  with_lock q (fun () ->
      if q.closed || Queue.length q.buf >= q.capacity then false
      else begin
        Queue.push x q.buf;
        if Queue.length q.buf > q.hwm then q.hwm <- Queue.length q.buf;
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  (* Outside the lock: a chaos hook that sleeps (a slow consumer) must
     not stall the producers or the other consumers. *)
  q.on_pop ();
  with_lock q (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.buf) then Some (Queue.pop q.buf)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
      in
      wait ())

let close q =
  with_lock q (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

let length q = with_lock q (fun () -> Queue.length q.buf)
let high_water_mark q = with_lock q (fun () -> q.hwm)
