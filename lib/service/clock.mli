(** Monotonic time, for deadlines and latency measurement.

    [Unix.gettimeofday] follows the civil clock, so an NTP step or manual
    adjustment could spuriously expire in-flight requests or record
    negative latencies; the service measures durations against
    [CLOCK_MONOTONIC] instead. Since the telemetry core grew its own
    monotonic clock, this is an alias for {!Suu_obs.Clock.now_ms} — one
    timestamp source for spans, histograms and deadlines alike. *)

val now_ms : unit -> float
(** Milliseconds since an arbitrary fixed origin; strictly unaffected by
    wall-clock adjustments. Only differences are meaningful. *)
