(** Monotonic time, for deadlines and latency measurement.

    [Unix.gettimeofday] follows the civil clock, so an NTP step or manual
    adjustment could spuriously expire in-flight requests or record
    negative latencies; the service measures durations against
    [CLOCK_MONOTONIC] instead (via a local C stub — this compiler's
    [Unix] predates [clock_gettime]). *)

val now_ms : unit -> float
(** Milliseconds since an arbitrary fixed origin; strictly unaffected by
    wall-clock adjustments. Only differences are meaningful. *)
