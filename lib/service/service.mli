(** The batch scheduling service: a request queue, a worker pool over
    OCaml 5 domains, an LRU result cache, and per-request deadlines.

    {2 Request lifecycle}

    The calling domain runs the {e reader}: it pulls one line at a time
    from the transport, decodes it ({!Request.of_line}) and admits it to
    a bounded {!Work_queue}. Admission failures — malformed requests,
    full queue — are answered immediately with structured error
    responses; they never kill the service and never block the reader.
    Worker domains pull requests, enforce deadlines, consult the result
    cache, execute, and emit responses. Responses are re-sequenced so
    they leave the transport {e in request order} regardless of which
    worker finishes first — clients can correlate by position as well as
    by id, and the output is deterministic for a deterministic workload.

    A [stats] response snapshots the counters at the moment it is next in
    line to be emitted, so its counts include every response that appears
    above it in the stream; responses still in flight below it may or may
    not be counted yet.

    {2 Reproducibility}

    Workers estimate makespans with
    {!Suu_sim.Engine.estimate_makespan_seeded}, whose per-trial RNG
    derivation makes an answer a pure function of the request — not of
    worker count, scheduling, or cache state. A cache hit therefore
    returns byte-identical result fields to a recomputation.

    {2 Deadlines}

    A request's budget ([deadline_ms], or the configured default) is
    measured from admission. It is checked when a worker picks the
    request up and between Monte-Carlo trials, so a pathological
    instance cannot wedge a worker beyond one trial (itself bounded by
    the engine's horizon). Expired requests answer
    [{"status":"timeout",…}]. *)

type config = {
  workers : int;  (** worker domains (>= 1) *)
  queue_capacity : int;  (** pending requests before load shedding *)
  cache_capacity : int;  (** LRU entries; 0 disables caching *)
  default_trials : int;  (** when a request omits ["trials"] *)
  default_seed : int;  (** when a request omits ["seed"] *)
  default_deadline_ms : float option;
      (** when a request omits ["deadline_ms"]; [None] = no deadline *)
}

val default_config : config
(** [Domain.recommended_domain_count () - 1] workers (at least 1, at
    most 8), queue 64, cache 128, 200 trials, seed 1, no deadline. *)

(** What a service run reports on shutdown (and, live, via the [stats]
    request). *)
type report = {
  metrics : Metrics.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  queue_hwm : int;  (** queue depth high-water mark *)
}

val report_to_string : report -> string
(** Human-readable multi-line rendering, for the CLI's shutdown dump. *)

(** The transport seam: the service core only ever sees a line source
    and a line sink, so a socket transport can be added without touching
    the service. [recv] is called from the reader domain only; [send] is
    internally serialised, one call per response line. *)
module type TRANSPORT = sig
  val recv : unit -> string option
  (** Next request line, [None] at end of input. *)

  val send : string -> unit
  (** Emit one response line. *)
end

val stdio : unit -> (module TRANSPORT)
(** Lines from stdin, responses to stdout (flushed per line) — the
    [suu serve] transport. *)

val serve : config -> (module TRANSPORT) -> report
(** Run the service until the transport's input is exhausted, then drain
    the queue, join the workers and return the final report. *)

val run_lines : config -> string list -> string list * report
(** [serve] over an in-memory transport: feed request lines, collect
    response lines (in request order). For tests and benchmarks. *)
