(** The batch scheduling service: a request queue, a worker pool over
    OCaml 5 domains, an LRU result cache, and per-request deadlines.

    {2 Request lifecycle}

    The calling domain runs the {e reader}: it pulls one line at a time
    from the transport, decodes it ({!Request.of_line}) and admits it to
    a bounded {!Work_queue}. Admission failures — malformed requests,
    full queue — are answered immediately with structured error
    responses; they never kill the service and never block the reader.
    Worker domains pull requests, enforce deadlines, consult the result
    cache, execute, and emit responses. Responses are re-sequenced so
    they leave the transport {e in request order} regardless of which
    worker finishes first — clients can correlate by position as well as
    by id, and the output is deterministic for a deterministic workload.

    A [stats] response snapshots the counters at the moment it is next in
    line to be emitted, so its counts include every response that appears
    above it in the stream; responses still in flight below it may or may
    not be counted yet.

    {2 Reproducibility}

    Workers estimate makespans with
    {!Suu_sim.Engine.estimate_makespan_seeded} (or, when
    [estimate_domains > 1], its bit-identical parallel counterpart),
    whose per-trial RNG derivation makes an answer a pure function of
    the request — not of worker count, estimate fan-out, scheduling, or
    cache state. A cache hit therefore returns byte-identical result
    fields to a recomputation.

    {2 Deadlines}

    A request's budget ([deadline_ms], or the configured default) is
    measured from admission. It is checked when a worker picks the
    request up and between Monte-Carlo trials, so a pathological
    instance cannot wedge a worker beyond one trial (itself bounded by
    the engine's horizon). Expired requests answer
    [{"status":"timeout",…}].

    {2 Fault tolerance}

    The worker pool is {e supervised}: an exception escaping the request
    handler kills only that worker domain, which answers its in-flight
    request with [{"status":"error","reason":"worker_crash",…}] (ordered
    emission never sees a sequence hole) and is replaced by a fresh
    domain while the [max_restarts] budget lasts. Once the budget is
    spent, remaining admitted requests are answered
    [reason:"unavailable"] at shutdown — every admitted request gets
    exactly one response, no matter how the pool dies.

    Failures raised as {!Fault.Transient_failure} are {e retried} up to
    [retries] times with capped exponential backoff and deterministic
    jitter; responses that needed retries carry ["retries":k], and the
    exhausted case answers [reason:"transient"].

    Under overload — queue depth at or above [degrade_watermark] — new
    Monte-Carlo requests are admitted {e degraded}: their trial count is
    capped at [degrade_trials] and the response carries
    ["degraded":true]. Degradation sheds work before the queue fills;
    hard reject-on-full ([reason:"queue_full"]) remains the last resort.

    All of it is exercisable deterministically through [fault]
    ({!Fault.spec}): injected worker crashes, transient failures,
    stalled trials, slow consumers, and slow or truncated transport
    lines, each keyed so the same spec corrupts the same requests at
    any worker count. *)

type config = {
  workers : int;  (** worker domains (>= 1) *)
  queue_capacity : int;  (** pending requests before load shedding *)
  cache_capacity : int;  (** LRU entries; 0 disables caching *)
  default_trials : int;  (** when a request omits ["trials"] *)
  default_seed : int;  (** when a request omits ["seed"] *)
  default_deadline_ms : float option;
      (** when a request omits ["deadline_ms"]; [None] = no deadline *)
  max_restarts : int;
      (** replacement worker domains over the service's lifetime; 0
          means a crashed worker is gone for good *)
  retries : int;  (** transient-failure retries per request *)
  retry_backoff_ms : float;
      (** backoff before retry [k] is [retry_backoff_ms * 2^k] (capped
          at 50 ms), times a deterministic jitter factor in [0.5, 1] *)
  degrade_watermark : int option;
      (** queue depth at which new Monte-Carlo requests are admitted
          degraded; [None] disables degradation *)
  degrade_trials : int;  (** trial cap for degraded admissions (>= 1) *)
  estimate_domains : int;
      (** domains {e per estimate} (>= 1): 1 runs a request's trials
          inline in its worker; more fans each estimate out through
          {!Suu_sim.Engine.estimate_makespan_parallel}, which is
          bit-identical to the inline path, so responses (cached or
          recomputed) never depend on this knob *)
  default_ci_target : float option;
      (** when a request omits ["ci_target"]; [None] (the default) runs
          every estimate to its full trial count. A target enables
          CI-width sequential stopping
          ({!Suu_sim.Engine.estimate_makespan_seeded}): the response's
          ["trials"] field then reports the executed count. Part of the
          request's cache key either way. *)
  fault : Fault.spec;  (** fault injection; {!Fault.none} in production *)
  tracer : Suu_obs.Trace.t;
      (** span tracer for the request path; {!Suu_obs.Trace.disabled}
          (the default) makes every span a single boolean test. When
          enabled, each request records a ["request"] span (attrs: seq,
          id, op) with a nested ["execute"] span per attempt, from which
          [suu serve --trace-out] writes a Chrome trace-event file at
          shutdown. *)
}

val default_config : config
(** [Domain.recommended_domain_count () - 1] workers (at least 1, at
    most 8), queue 64, cache 128, 200 trials, seed 1, no deadline;
    8 restarts, 2 retries with 1 ms base backoff, degradation off,
    estimates inline ([estimate_domains = 1]), no fault injection. *)

(** What a service run reports on shutdown (and, live, via the [stats]
    request). *)
type report = {
  metrics : Metrics.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  queue_hwm : int;  (** queue depth high-water mark *)
}

val report_to_string : report -> string
(** Human-readable multi-line rendering, for the CLI's shutdown dump. *)

val report_to_prom : ?workers:int -> report -> string
(** Prometheus-style text exposition (format 0.0.4): service counters,
    cache/queue gauges (plus a [suu_workers] gauge when [workers] is
    given), the full ok-latency histogram with cumulative [le] buckets,
    and the engine's process-wide counters
    ({!Suu_sim.Engine.counters} — trials run, steps simulated, leapfrog
    trials and steps skipped). Served by the [stats] request's
    [format:"prom"] variant and by [suu serve --stats-format prom]'s
    shutdown dump. *)

(** The transport seam: the service core only ever sees a line source
    and a line sink, so a socket transport can be added without touching
    the service. [recv] is called from the reader domain only; [send] is
    internally serialised, one call per response line. *)
module type TRANSPORT = sig
  val recv : unit -> string option
  (** Next request line, [None] at end of input. *)

  val send : string -> unit
  (** Emit one response line. *)
end

val stdio : unit -> (module TRANSPORT)
(** Lines from stdin, responses to stdout (flushed per line) — the
    [suu serve] transport. *)

val serve : config -> (module TRANSPORT) -> report
(** Run the service until the transport's input is exhausted, then drain
    the queue, join the workers (and any supervisor-spawned
    replacements) and return the final report. Every admitted request is
    answered exactly once, even if the whole worker pool crashed. *)

val run_lines : config -> string list -> string list * report
(** [serve] over an in-memory transport: feed request lines, collect
    response lines (in request order). For tests and benchmarks. *)
