(** Minimal JSON values for the service wire protocol.

    The container has no JSON library, so the serving layer carries its
    own: a small value type, a serialiser that emits everything on one
    line (the protocol is line-oriented), and a recursive-descent parser.
    Object fields keep their list order on output, so encoded responses
    are byte-deterministic — which is what lets the cram tests pin them.

    Numbers are [float]s (as in JSON itself); integral values within the
    exactly-representable range print without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [Num] of an integer. *)

val to_string : t -> string
(** One-line serialisation; strings are escaped per RFC 8259. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). Objects with duplicate keys are rejected — a
    line whose meaning depends on which occurrence a reader picks could
    make two processes (say, a routing coordinator and the worker it
    forwards to) disagree about the same request. [Error msg] pinpoints
    the byte offset. *)

(** {1 Accessors} — shallow, total; [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val to_str : t -> string option
val to_num : t -> float option

val to_int : t -> int option
(** [Num]s that are exactly integral. *)

val to_bool : t -> bool option
