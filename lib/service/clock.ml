let now_ms = Suu_obs.Clock.now_ms
