external now_ms : unit -> float = "suu_service_clock_now_ms"
