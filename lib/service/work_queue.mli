(** Bounded multi-producer / multi-consumer work queue.

    The service's admission point: requests wait here between the reader
    and the worker pool. The queue is {e bounded} and {e non-blocking on
    the producer side} — when it is full, {!push} refuses instead of
    blocking, and the caller turns the refusal into a structured
    "queue full" error response. That is the backpressure policy: clients
    see load shedding immediately rather than unbounded buffering or a
    wedged reader.

    Consumers block on {!pop} until an item or shutdown arrives. All
    operations are safe across OCaml 5 domains. *)

type 'a t

val create : ?on_pop:(unit -> unit) -> capacity:int -> unit -> 'a t
(** [on_pop] (default: nothing) runs at every {!pop} entry, outside the
    queue lock — the fault-injection seam for simulating slow consumers
    and widening race windows in stress tests. It must not raise.

    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Enqueue; [false] (and no effect) when the queue is full or closed. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty and open. [None] once the
    queue is closed {e and} drained — consumers treat it as shutdown. *)

val close : 'a t -> unit
(** Reject further [push]es and wake all blocked consumers; items already
    queued are still delivered. Idempotent. *)

val length : 'a t -> int
(** Current depth (racy under concurrency; exact when quiescent). *)

val high_water_mark : 'a t -> int
(** Maximum depth ever reached — the service reports it as a congestion
    metric. *)
