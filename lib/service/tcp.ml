(* TCP transport for the serving layer: newline-delimited line framing
   over a socket, the same wire protocol the stdio transport speaks.
   The listener side lives here (workers: `suu serve --listen`); the
   connecting side lives with the coordinator's shard client, which
   owns reconnect policy. *)

let default_host = "127.0.0.1"

(* "host:port", ":port" or bare "port"; port 0 asks the kernel for a
   free port (the bound address is announced after bind). *)
let parse_addr text =
  let host, port_text =
    match String.rindex_opt text ':' with
    | None -> (default_host, text)
    | Some i ->
        let h = String.sub text 0 i in
        ( (if h = "" then default_host else h),
          String.sub text (i + 1) (String.length text - i - 1) )
  in
  match int_of_string_opt port_text with
  | Some port when port >= 0 && port <= 65535 -> (
      match Unix.inet_addr_of_string host with
      | addr -> Ok (addr, port)
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              Error (Printf.sprintf "tcp: no address for host %S" host)
          | h -> Ok (h.Unix.h_addr_list.(0), port)
          | exception Not_found ->
              Error (Printf.sprintf "tcp: unknown host %S" host)))
  | _ -> Error (Printf.sprintf "tcp: bad port in address %S" text)

let addr_to_string = function
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

(* Bind + listen; returns the socket and the actual bound address
   (resolving port 0). *)
let listen text =
  match parse_addr text with
  | Error _ as e -> e
  | Ok (addr, port) -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 16
      with
      | () -> Ok (fd, addr_to_string (Unix.getsockname fd))
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "tcp: cannot listen on %s: %s" text
                   (Unix.error_message e)))

(* --- line-framed connections ------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read but not yet returned as lines *)
  chunk : bytes;
  (* Close exactly once: after {!tear} or {!close} the fd number may be
     recycled by a concurrent dial (in-process tests share one fd
     table), and a second close would kill an innocent socket. *)
  mutable closed : bool;
}

let conn_of_fd fd =
  { fd; rbuf = Buffer.create 4096; chunk = Bytes.create 4096; closed = false }

let take_line c =
  let s = Buffer.contents c.rbuf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s (i + 1) (String.length s - i - 1);
      (* Tolerate CRLF framing from foreign peers. *)
      let line = if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
                 else String.sub s 0 i in
      Some line

(* One framed line, or None on clean EOF. Read errors (reset, timeout
   when SO_RCVTIMEO is armed) raise Unix_error for the caller's
   reconnect policy to interpret. *)
let rec recv_line c =
  match take_line c with
  | Some line -> Some line
  | None -> (
      match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
      | 0 ->
          (* EOF: a trailing unterminated fragment is dropped — the
             protocol is strictly line-framed. *)
          None
      | n ->
          Buffer.add_subbytes c.rbuf c.chunk 0 n;
          recv_line c
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_line c)

let send_line c line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then
      match Unix.write c.fd payload off (len - off) with
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
  in
  push 0

let shutdown_send c =
  if not c.closed then
    try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let shutdown_all c =
  if not c.closed then
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let tear c =
  (* Abrupt loss: linger 0 turns close into RST where supported, and
     both directions die at once either way. *)
  if not c.closed then begin
    c.closed <- true;
    (try Unix.setsockopt_optint c.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Dial-and-drop: pop a blocked accept so its [stopping] check runs.
   Closing the listener from another thread does not wake accept on
   Linux; a throwaway connection always does. *)
let wake addr_text =
  match parse_addr addr_text with
  | Error _ -> ()
  | Ok (addr, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- the worker's accept loop ----------------------------------------- *)

(* A TRANSPORT over one accepted connection, with the connection-level
   fault sites applied on the response path: [Sock_stall] sleeps before
   a write, [Tear] destroys the socket instead of writing. Once the
   socket is dead, sends are dropped and recv reports EOF — the service
   drains as if the client had vanished, which it has. *)
let connection_transport ~(fault : Fault.spec) ~line_base c :
    (module Service.TRANSPORT) =
  (module struct
    let dead = ref false
    let sent = ref 0

    let recv () =
      if !dead then None
      else
        match recv_line c with
        | r -> r
        | exception Unix.Unix_error (_, _, _) ->
            dead := true;
            None

    let send line =
      if not !dead then begin
        let k = line_base + !sent in
        incr sent;
        if Fault.fires fault Fault.Sock_stall ~key:k then
          Unix.sleepf (fault.Fault.sock_stall_ms /. 1000.);
        if Fault.fires fault Fault.Tear ~key:k then begin
          tear c;
          dead := true
        end
        else
          try send_line c line
          with Unix.Unix_error _ | Sys_error _ -> dead := true
      end
  end)

(* Accept connections sequentially and run one service instance per
   connection. [max_conns = 0] loops until [stopping] (the process is
   normally killed by whoever spawned it); response-line fault keys
   continue across connections so a reconnecting client cannot re-draw
   the exact fault schedule that tore its first connection. *)
let serve_connections ?(max_conns = 0) ?(stopping = fun () -> false)
    ~on_report (cfg : Service.config) lsock =
  let conns = ref 0 in
  let lines_out = ref 0 in
  let lost = ref false in
  let rec loop () =
    if (not (stopping ())) && (max_conns = 0 || !conns < max_conns) then begin
      match Unix.accept lsock with
      | fd, _peer when stopping () ->
          (* A wake connection: whoever flipped [stopping] dials once to
             pop the blocked accept (closing the listener from another
             thread does not wake it on Linux). *)
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _peer ->
          let k = !conns in
          incr conns;
          let c = conn_of_fd fd in
          if Fault.fires cfg.Service.fault Fault.Refuse ~key:k then tear c
          else begin
            let transport =
              connection_transport ~fault:cfg.Service.fault
                ~line_base:!lines_out c
            in
            let report = Service.serve cfg transport in
            lines_out :=
              !lines_out + report.Service.metrics.Metrics.requests;
            close c;
            on_report report
          end;
          loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* The listener was closed under us — the in-process stop
             signal tests and embedders use. Don't close it again: the
             fd number may already have been recycled. *)
          lost := true
    end
  in
  loop ();
  if not !lost then try Unix.close lsock with Unix.Unix_error _ -> ()
