(** Service counters and latency tracking.

    One [t] is shared by the reader and all worker domains; recording is
    mutex-protected and cheap (a few counter bumps, one list cons). A
    {!snapshot} is taken on demand (the [stats] request) and on shutdown;
    latency quantiles are computed at snapshot time from the recorded
    per-request latencies via {!Suu_prob.Stats}.

    Counting conventions (documented in DESIGN.md §"Serving"): [ok],
    [errors], [timeouts] and [rejected] partition the completed requests;
    [requests] is their sum. [stats] requests are counted separately in
    [stats_requests] so a stats response can report the workload without
    counting itself. Latencies are recorded for [ok] responses only and
    measured from admission (enqueue) to response emission, so queueing
    delay is included. *)

type t

val create : unit -> t

val record_ok : t -> latency_ms:float -> unit
val record_error : t -> unit
val record_timeout : t -> unit

val record_rejected : t -> unit
(** A request refused at admission because the queue was full. *)

val record_stats_request : t -> unit

type snapshot = {
  requests : int;  (** ok + errors + timeouts + rejected *)
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  stats_requests : int;
  latency : Suu_prob.Stats.summary option;  (** [None] until the first ok *)
  latency_p95_ms : float;  (** 0 until the first ok *)
}

val snapshot : t -> snapshot
