(** Service counters and latency tracking.

    One [t] is shared by the reader and all worker domains; recording is
    mutex-protected and O(1) — a few counter bumps and one histogram
    increment. Latencies land in a fixed-layout log-bucketed histogram
    ({!Suu_obs.Histogram}), so a long-lived service's metrics stay
    bounded no matter how many requests it serves, and quantiles are
    whole-run figures (not windowed) with bounded relative error
    (≤ 15% with the default layout). A {!snapshot} is taken on demand
    (the [stats] request) and on shutdown.

    Counting conventions (documented in DESIGN.md §"Serving"): [ok],
    [errors], [timeouts] and [rejected] partition the completed requests;
    [requests] is their sum. [stats] requests are counted separately in
    [stats_requests] so a stats response can report the workload without
    counting itself. Latencies are recorded for [ok] responses only and
    measured (monotonically, {!Clock}) from admission (enqueue) to
    response emission, so queueing delay is included. *)

type t

val create : unit -> t

val record_ok : t -> latency_ms:float -> unit
val record_error : t -> unit
val record_timeout : t -> unit

val record_rejected : t -> unit
(** A request refused at admission because the queue was full. *)

val record_stats_request : t -> unit

val record_worker_crash : t -> unit
(** A worker domain died on an uncaught exception; its in-flight request
    (if any) was answered with a [worker_crash] error. *)

val record_restart : t -> unit
(** The supervisor spawned a replacement worker domain. *)

val record_retry : t -> unit
(** One retry of a transiently-failed request (a request retried [k]
    times bumps this [k] times). *)

val record_degraded : t -> unit
(** A request admitted with a degraded trial count because the queue
    depth had crossed the overload watermark. *)

(** Latency figures over {e every} ok response of the run: [count],
    [mean_ms], [min_ms] and [max_ms] are exact; the quantiles are
    histogram estimates with bounded relative error. *)
type latency = {
  count : int;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type snapshot = {
  requests : int;  (** ok + errors + timeouts + rejected *)
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  stats_requests : int;
  worker_crashes : int;  (** crashed workers (each answers as an error) *)
  restarts : int;  (** replacement domains spawned by the supervisor *)
  retries : int;  (** total transient-failure retries across requests *)
  degraded : int;  (** requests admitted with a degraded trial count *)
  latency : latency option;  (** [None] until the first ok *)
  latency_hist : Suu_obs.Histogram.t option;
      (** an independent copy of the full latency histogram, for bucketed
          exposition (Prometheus); [None] until the first ok *)
}

val snapshot : t -> snapshot
