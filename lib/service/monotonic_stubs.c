/* Monotonic wall-clock milliseconds for the service's deadlines and
   latency measurement. Unix.gettimeofday is a civil clock: an NTP step
   can spuriously expire in-flight requests or produce negative
   latencies, and this switch's Unix lacks clock_gettime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value suu_service_clock_now_ms(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_double((double)ts.tv_sec * 1e3 + (double)ts.tv_nsec / 1e6);
}
