module Instance = Suu_core.Instance
module Io = Suu_harness.Io

type algo = [ `Auto | `Adaptive | `Oblivious ]

let algo_name = function
  | `Auto -> "auto"
  | `Adaptive -> "adaptive"
  | `Oblivious -> "oblivious"

type op =
  | Solve of { algo : algo; trials : int; seed : int; instance : Instance.t }
  | Estimate of {
      plan : Suu_core.Oblivious.t;
      plan_digest : string;
      trials : int;
      seed : int;
      instance : Instance.t;
    }
  | Info of Instance.t
  | Exact of Instance.t
  | Stats of { format : [ `Json | `Prom ] }

type t = { id : string option; deadline_ms : float option; op : op }

let op_kind = function
  | Solve _ -> "solve"
  | Estimate _ -> "estimate"
  | Info _ -> "info"
  | Exact _ -> "exact"
  | Stats _ -> "stats"

(* --- decoding --- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let id_of json =
  match Json.member "id" json with
  | Some (Json.Str s) -> Some s
  | Some (Json.Num _ as v) -> Some (Json.to_string v)
  | _ -> None

let int_field json name ~default =
  match Json.member name json with
  | None -> default
  | Some v -> (
      match Json.to_int v with
      | Some k -> k
      | None -> fail "%s: expected an integer" name)

let instance_field json =
  match Json.member "instance" json with
  | Some (Json.Str text) -> (
      try Io.of_string text with Failure msg -> fail "instance: %s" msg)
  | Some _ -> fail "instance: expected a string"
  | None -> fail "instance: missing"

let trials_field json ~default =
  let trials = int_field json "trials" ~default in
  if trials < 1 then fail "trials: must be >= 1";
  trials

let of_line ~default_trials ~default_seed line =
  match Json.of_string line with
  | Error msg -> Error ("parse: " ^ msg, None)
  | Ok json -> (
      let id = id_of json in
      match
        let op_name =
          match Json.member "op" json with
          | Some (Json.Str s) -> s
          | Some _ -> fail "op: expected a string"
          | None -> fail "op: missing"
        in
        let op =
          match op_name with
          | "solve" ->
              let algo =
                match Json.member "algo" json with
                | None | Some (Json.Str "auto") -> `Auto
                | Some (Json.Str "adaptive") -> `Adaptive
                | Some (Json.Str "oblivious") -> `Oblivious
                | Some (Json.Str other) ->
                    fail "algo: unknown algorithm %S" other
                | Some _ -> fail "algo: expected a string"
              in
              Solve
                {
                  algo;
                  trials = trials_field json ~default:default_trials;
                  seed = int_field json "seed" ~default:default_seed;
                  instance = instance_field json;
                }
          | "estimate" ->
              let plan_text =
                match Json.member "plan" json with
                | Some (Json.Str s) -> s
                | Some _ -> fail "plan: expected a string"
                | None -> fail "plan: missing"
              in
              let plan =
                try Io.schedule_of_string plan_text
                with Failure msg -> fail "plan: %s" msg
              in
              let instance = instance_field json in
              if plan.Suu_core.Oblivious.m <> Instance.m instance then
                fail "plan: %d machines but instance has %d"
                  plan.Suu_core.Oblivious.m (Instance.m instance);
              Estimate
                {
                  plan;
                  plan_digest = Digest.to_hex (Digest.string plan_text);
                  trials = trials_field json ~default:default_trials;
                  seed = int_field json "seed" ~default:default_seed;
                  instance;
                }
          | "info" -> Info (instance_field json)
          | "exact" -> Exact (instance_field json)
          | "stats" ->
              let format =
                match Json.member "format" json with
                | None | Some (Json.Str "json") -> `Json
                | Some (Json.Str "prom") -> `Prom
                | Some (Json.Str other) -> fail "format: unknown format %S" other
                | Some _ -> fail "format: expected a string"
              in
              Stats { format }
          | other -> fail "op: unknown operation %S" other
        in
        let deadline_ms =
          match Json.member "deadline_ms" json with
          | None -> None
          | Some v -> (
              match Json.to_num v with
              | Some d when d >= 0. -> Some d
              | Some _ -> fail "deadline_ms: must be >= 0"
              | None -> fail "deadline_ms: expected a number")
        in
        { id; deadline_ms; op }
      with
      | req -> Ok req
      | exception Bad msg -> Error (msg, id)
      (* Last line of defence: a decoder bug (or a field validation gap)
         must yield a structured error, never kill the reader loop —
         but resource-exhaustion exceptions are not decoder bugs and
         swallowing them would hide a dying process. *)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e -> Error ("parse: unexpected: " ^ Printexc.to_string e, id))

(* --- cache keys --- *)

let canonical_algo = function
  | `Auto -> `Adaptive
  | (`Adaptive | `Oblivious) as a -> a

let cache_key req =
  match req.op with
  | Solve { algo; trials; seed; instance } ->
      (* Key on the algorithm actually executed, so "auto" and "adaptive"
         requests share one cache entry. *)
      Some
        (Printf.sprintf "solve:%s:%s:%d:%d" (Io.digest instance)
           (algo_name (canonical_algo algo)) trials seed)
  | Estimate { plan_digest; trials; seed; instance; _ } ->
      Some
        (Printf.sprintf "estimate:%s:%s:%d:%d" (Io.digest instance)
           plan_digest trials seed)
  | Exact instance -> Some (Printf.sprintf "exact:%s" (Io.digest instance))
  | Info _ | Stats _ -> None

(* --- responses --- *)

let id_json = function Some s -> Json.Str s | None -> Json.Null

let ok ~id fields =
  Json.to_string
    (Json.Obj (("id", id_json id) :: ("status", Json.Str "ok") :: fields))

let error ~id ?reason msg =
  Json.to_string
    (Json.Obj
       ([
          ("id", id_json id);
          ("status", Json.Str "error");
          ("error", Json.Str msg);
        ]
       @
       match reason with
       | None -> []
       | Some r -> [ ("reason", Json.Str r) ]))

let timeout ~id ~deadline_ms =
  Json.to_string
    (Json.Obj
       [
         ("id", id_json id);
         ("status", Json.Str "timeout");
         ("error", Json.Str "deadline exceeded");
         ("deadline_ms", Json.Num deadline_ms);
       ])
