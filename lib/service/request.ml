module Instance = Suu_core.Instance
module Io = Suu_harness.Io
module Churn = Suu_dyn.Churn

type algo = [ `Auto | `Adaptive | `Oblivious | `Improved | `Lzf | `Fixed ]

let algo_name = function
  | `Auto -> "auto"
  | `Adaptive -> "adaptive"
  | `Oblivious -> "oblivious"
  | `Improved -> "improved"
  | `Lzf -> "lzf"
  | `Fixed -> "fixed"

type op =
  | Solve of {
      algo : algo;
      trials : int;
      seed : int;
      range : (int * int) option;
      ci_target : float option;
      releases : int array option;
      churn : Churn.params option;
      instance : Instance.t;
    }
  | Estimate of {
      plan : Suu_core.Oblivious.t;
      plan_digest : string;
      trials : int;
      seed : int;
      range : (int * int) option;
      ci_target : float option;
      releases : int array option;
      churn : Churn.params option;
      instance : Instance.t;
    }
  | Info of Instance.t
  | Exact of Instance.t
  | Ping
  | Stats of { format : [ `Json | `Prom | `Raw ] }

type t = { id : string option; deadline_ms : float option; op : op }

let op_kind = function
  | Solve _ -> "solve"
  | Estimate _ -> "estimate"
  | Info _ -> "info"
  | Exact _ -> "exact"
  | Ping -> "ping"
  | Stats _ -> "stats"

(* --- decoding --- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let id_of json =
  match Json.member "id" json with
  | Some (Json.Str s) -> Some s
  | Some (Json.Num _ as v) -> Some (Json.to_string v)
  | _ -> None

let int_field json name ~default =
  match Json.member name json with
  | None -> default
  | Some v -> (
      match Json.to_int v with
      | Some k -> k
      | None -> fail "%s: expected an integer" name)

let instance_field json =
  match Json.member "instance" json with
  | Some (Json.Str text) -> (
      try Io.of_string text with Failure msg -> fail "instance: %s" msg)
  | Some _ -> fail "instance: expected a string"
  | None -> fail "instance: missing"

let trials_field json ~default =
  let trials = int_field json "trials" ~default in
  if trials < 1 then fail "trials: must be >= 1";
  trials

(* ["range":[lo,hi]] marks a trial-range sub-job: run only the trials
   [lo <= k < hi] of the seeded estimate. The coordinator splits a large
   request into these; contiguous ranges merge back bit-identically
   ({!Suu_sim.Engine.merge_ranges}). *)
(* ["ci_target":w] asks for CI-width sequential stopping: the estimate
   may finish with fewer trials once the 95% CI half-width of the mean
   is at most [w]. Absent field -> the server's default (usually off). *)
let ci_target_field json ~default =
  match Json.member "ci_target" json with
  | None -> default
  | Some v -> (
      match Json.to_num v with
      | Some w when w > 0. -> Some w
      | Some _ -> fail "ci_target: must be > 0"
      | None -> fail "ci_target: expected a number")

(* ["releases":[r0,...]] makes the request an online one: job [j] only
   becomes eligible at step [releases.(j)]. Validated here — length
   against the instance, entries non-negative — so a hostile vector is
   a structured request error, not a worker-side exception. *)
let releases_field json ~n =
  match Json.member "releases" json with
  | None -> None
  | Some (Json.List items) ->
      let r =
        Array.of_list
          (List.map
             (fun v ->
               match Json.to_int v with
               | Some k when k >= 0 -> k
               | Some k -> fail "releases: negative release %d" k
               | None -> fail "releases: expected a list of integers")
             items)
      in
      if Array.length r <> n then
        fail "releases: %d entries but instance has %d jobs" (Array.length r)
          n;
      Some r
  | Some _ -> fail "releases: expected a list of integers"

(* ["churn":"seed=S,rate=R,repair=K,perm=Q,steps=N"] asks for a churned
   environment: the worker regenerates the deterministic machine up/down
   timeline from the spec and the instance's machine count, so the spec
   (not a serialized timeline) is what travels and what the cache key
   folds in. *)
let churn_field json =
  match Json.member "churn" json with
  | None -> None
  | Some (Json.Str spec) -> (
      match Churn.params_of_spec spec with
      | Ok p -> Some p
      (* Spec errors already carry the "churn: " prefix. *)
      | Error msg -> fail "%s" msg)
  | Some _ -> fail "churn: expected a spec string"

let range_field json ~trials =
  match Json.member "range" json with
  | None -> None
  | Some (Json.List [ lo; hi ]) -> (
      match (Json.to_int lo, Json.to_int hi) with
      | Some lo, Some hi ->
          if lo < 0 || hi <= lo || hi > trials then
            fail "range: need 0 <= lo < hi <= trials"
          else Some (lo, hi)
      | _ -> fail "range: expected [lo,hi] integers")
  | Some _ -> fail "range: expected [lo,hi] integers"

let of_line ~default_trials ~default_seed ?default_ci_target line =
  match Json.of_string line with
  | Error msg -> Error ("parse: " ^ msg, None)
  | Ok json -> (
      let id = id_of json in
      match
        let op_name =
          match Json.member "op" json with
          | Some (Json.Str s) -> s
          | Some _ -> fail "op: expected a string"
          | None -> fail "op: missing"
        in
        let op =
          match op_name with
          | "solve" ->
              let algo =
                match Json.member "algo" json with
                | None | Some (Json.Str "auto") -> `Auto
                | Some (Json.Str "adaptive") -> `Adaptive
                | Some (Json.Str "oblivious") -> `Oblivious
                | Some (Json.Str "improved") -> `Improved
                | Some (Json.Str "lzf") -> `Lzf
                | Some (Json.Str "fixed") -> `Fixed
                | Some (Json.Str other) ->
                    fail "algo: unknown algorithm %S" other
                | Some _ -> fail "algo: expected a string"
              in
              let trials = trials_field json ~default:default_trials in
              let instance = instance_field json in
              Solve
                {
                  algo;
                  trials;
                  seed = int_field json "seed" ~default:default_seed;
                  range = range_field json ~trials;
                  ci_target = ci_target_field json ~default:default_ci_target;
                  releases = releases_field json ~n:(Instance.n instance);
                  churn = churn_field json;
                  instance;
                }
          | "estimate" ->
              let plan_text =
                match Json.member "plan" json with
                | Some (Json.Str s) -> s
                | Some _ -> fail "plan: expected a string"
                | None -> fail "plan: missing"
              in
              let plan =
                try Io.schedule_of_string plan_text
                with Failure msg -> fail "plan: %s" msg
              in
              let instance = instance_field json in
              if plan.Suu_core.Oblivious.m <> Instance.m instance then
                fail "plan: %d machines but instance has %d"
                  plan.Suu_core.Oblivious.m (Instance.m instance);
              let trials = trials_field json ~default:default_trials in
              Estimate
                {
                  plan;
                  plan_digest = Digest.to_hex (Digest.string plan_text);
                  trials;
                  seed = int_field json "seed" ~default:default_seed;
                  range = range_field json ~trials;
                  ci_target = ci_target_field json ~default:default_ci_target;
                  releases = releases_field json ~n:(Instance.n instance);
                  churn = churn_field json;
                  instance;
                }
          | "info" -> Info (instance_field json)
          | "exact" -> Exact (instance_field json)
          | "ping" -> Ping
          | "stats" ->
              let format =
                match Json.member "format" json with
                | None | Some (Json.Str "json") -> `Json
                | Some (Json.Str "prom") -> `Prom
                | Some (Json.Str "raw") -> `Raw
                | Some (Json.Str other) -> fail "format: unknown format %S" other
                | Some _ -> fail "format: expected a string"
              in
              Stats { format }
          | other -> fail "op: unknown operation %S" other
        in
        let deadline_ms =
          match Json.member "deadline_ms" json with
          | None -> None
          | Some v -> (
              match Json.to_num v with
              | Some d when d >= 0. -> Some d
              | Some _ -> fail "deadline_ms: must be >= 0"
              | None -> fail "deadline_ms: expected a number")
        in
        { id; deadline_ms; op }
      with
      | req -> Ok req
      | exception Bad msg -> Error (msg, id)
      (* Last line of defence: a decoder bug (or a field validation gap)
         must yield a structured error, never kill the reader loop —
         but resource-exhaustion exceptions are not decoder bugs and
         swallowing them would hide a dying process. *)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e -> Error ("parse: unexpected: " ^ Printexc.to_string e, id))

(* --- cache keys --- *)

let canonical_algo = function
  | `Auto -> `Adaptive
  | (`Adaptive | `Oblivious | `Improved | `Lzf | `Fixed) as a -> a

let range_suffix = function
  | None -> ""
  | Some (lo, hi) -> Printf.sprintf ":r%d-%d" lo hi

(* Dynamic-environment parameters get their own cache-key lanes: a
   churned or release-dated answer must never alias the static one. The
   churn lane keys on the canonical spec (the timeline is a pure
   function of spec + machine count); the release lane keys on a digest
   of the vector. *)
let releases_suffix = function
  | None -> ""
  | Some r ->
      Printf.sprintf ":l%s"
        (Digest.to_hex
           (Digest.string
              (String.concat "," (List.map string_of_int (Array.to_list r)))))

let churn_suffix = function
  | None -> ""
  | Some p -> ":h" ^ Churn.spec_of_params p

(* [%h] is an exact (hex) float representation: two requests share a key
   iff they stop at the very same CI width. An early-stopped answer must
   never alias an exhaustive one. *)
let ci_suffix = function
  | None -> ""
  | Some w -> Printf.sprintf ":c%h" w

let cache_key req =
  match req.op with
  | Solve { algo; trials; seed; range; ci_target; releases; churn; instance }
    ->
      (* Key on the algorithm actually executed, so "auto" and "adaptive"
         requests share one cache entry. A ranged sub-job keys on its
         range too: a partial answer must never alias the full one. *)
      Some
        (Printf.sprintf "solve:%s:%s:%d:%d%s%s%s%s" (Io.digest instance)
           (algo_name (canonical_algo algo)) trials seed (range_suffix range)
           (ci_suffix ci_target) (releases_suffix releases)
           (churn_suffix churn))
  | Estimate
      {
        plan_digest;
        trials;
        seed;
        range;
        ci_target;
        releases;
        churn;
        instance;
        _;
      } ->
      Some
        (Printf.sprintf "estimate:%s:%s:%d:%d%s%s%s%s" (Io.digest instance)
           plan_digest trials seed (range_suffix range) (ci_suffix ci_target)
           (releases_suffix releases) (churn_suffix churn))
  | Exact instance -> Some (Printf.sprintf "exact:%s" (Io.digest instance))
  | Info _ | Ping | Stats _ -> None

(* --- re-encoding (coordinator sub-jobs) --- *)

let sub_line req ~lo ~hi =
  let envelope fields =
    let base =
      match req.id with None -> [] | Some id -> [ ("id", Json.Str id) ]
    in
    let deadline =
      match req.deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", Json.Num d) ]
    in
    Json.to_string (Json.Obj (base @ fields @ deadline))
  in
  let ci_fields = function
    | None -> []
    | Some w -> [ ("ci_target", Json.Num w) ]
  in
  (* Canonical re-encode of the dynamic-environment fields: releases as
     the integer list verbatim, churn as the canonical spec string — so
     every sub-job of one request computes over the identical timeline
     and their worker-side cache keys agree. *)
  let dyn_fields ~releases ~churn =
    (match releases with
    | None -> []
    | Some r ->
        [
          ( "releases",
            Json.List (Array.to_list (Array.map Json.int r)) );
        ])
    @
    match churn with
    | None -> []
    | Some p -> [ ("churn", Json.Str (Churn.spec_of_params p)) ]
  in
  match req.op with
  | Solve { algo; trials; seed; ci_target; releases; churn; instance; _ } ->
      envelope
        ([
           ("op", Json.Str "solve");
           (* Re-encode the canonical algorithm, not the raw one: "auto"
              resolution must happen exactly once, at the coordinator, so
              a sub-job executes (and caches) identically on any worker
              whatever that worker's own default resolution is. *)
           ("algo", Json.Str (algo_name (canonical_algo algo)));
           ("trials", Json.int trials);
           ("seed", Json.int seed);
           ("range", Json.List [ Json.int lo; Json.int hi ]);
         ]
        @ ci_fields ci_target
        @ dyn_fields ~releases ~churn
        @ [ ("instance", Json.Str (Io.to_string instance)) ])
  | Estimate { plan; trials; seed; ci_target; releases; churn; instance; _ }
    ->
      envelope
        ([
           ("op", Json.Str "estimate");
           ("plan", Json.Str (Io.schedule_to_string plan));
           ("trials", Json.int trials);
           ("seed", Json.int seed);
           ("range", Json.List [ Json.int lo; Json.int hi ]);
         ]
        @ ci_fields ci_target
        @ dyn_fields ~releases ~churn
        @ [ ("instance", Json.Str (Io.to_string instance)) ])
  | Info _ | Exact _ | Ping | Stats _ ->
      invalid_arg "Request.sub_line: not a Monte-Carlo op"

(* --- responses --- *)

let id_json = function Some s -> Json.Str s | None -> Json.Null

let ok ~id fields =
  Json.to_string
    (Json.Obj (("id", id_json id) :: ("status", Json.Str "ok") :: fields))

let error ~id ?reason msg =
  Json.to_string
    (Json.Obj
       ([
          ("id", id_json id);
          ("status", Json.Str "error");
          ("error", Json.Str msg);
        ]
       @
       match reason with
       | None -> []
       | Some r -> [ ("reason", Json.Str r) ]))

let timeout ~id ~deadline_ms =
  Json.to_string
    (Json.Obj
       [
         ("id", id_json id);
         ("status", Json.Str "timeout");
         ("error", Json.Str "deadline exceeded");
         ("deadline_ms", Json.Num deadline_ms);
       ])
