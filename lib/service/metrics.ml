type t = {
  lock : Mutex.t;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable stats_requests : int;
  mutable latencies : float list;  (* ms, most recent first *)
}

let create () =
  {
    lock = Mutex.create ();
    ok = 0;
    errors = 0;
    timeouts = 0;
    rejected = 0;
    stats_requests = 0;
    latencies = [];
  }

let with_lock m f =
  Mutex.lock m.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

let record_ok m ~latency_ms =
  with_lock m (fun () ->
      m.ok <- m.ok + 1;
      m.latencies <- latency_ms :: m.latencies)

let record_error m = with_lock m (fun () -> m.errors <- m.errors + 1)
let record_timeout m = with_lock m (fun () -> m.timeouts <- m.timeouts + 1)
let record_rejected m = with_lock m (fun () -> m.rejected <- m.rejected + 1)

let record_stats_request m =
  with_lock m (fun () -> m.stats_requests <- m.stats_requests + 1)

type snapshot = {
  requests : int;
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  stats_requests : int;
  latency : Suu_prob.Stats.summary option;
  latency_p95_ms : float;
}

let snapshot m =
  with_lock m (fun () ->
      let latencies = Array.of_list m.latencies in
      let latency, p95 =
        if Array.length latencies = 0 then (None, 0.)
        else
          ( Some (Suu_prob.Stats.summarize latencies),
            Suu_prob.Stats.quantile latencies 0.95 )
      in
      {
        requests = m.ok + m.errors + m.timeouts + m.rejected;
        ok = m.ok;
        errors = m.errors;
        timeouts = m.timeouts;
        rejected = m.rejected;
        stats_requests = m.stats_requests;
        latency;
        latency_p95_ms = p95;
      })
