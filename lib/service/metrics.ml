(* Latency accounting is O(1) per request and bounded in memory: running
   count/sum/min/max over the whole run plus a fixed-size ring of the
   most recent samples, from which quantiles are computed at snapshot
   time. A long-lived service's metrics therefore cannot grow without
   bound, and a stats request costs O(window log window), not
   O(requests served). *)

let window_size = 1024

type t = {
  lock : Mutex.t;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable stats_requests : int;
  mutable worker_crashes : int;
  mutable restarts : int;
  mutable retries : int;
  mutable degraded : int;
  mutable lat_sum : float;
  mutable lat_min : float;
  mutable lat_max : float;
  ring : float array;  (* the last [window_size] ok latencies, ms *)
}

let create () =
  {
    lock = Mutex.create ();
    ok = 0;
    errors = 0;
    timeouts = 0;
    rejected = 0;
    stats_requests = 0;
    worker_crashes = 0;
    restarts = 0;
    retries = 0;
    degraded = 0;
    lat_sum = 0.;
    lat_min = infinity;
    lat_max = neg_infinity;
    ring = Array.make window_size 0.;
  }

let with_lock m f =
  Mutex.lock m.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

let record_ok m ~latency_ms =
  with_lock m (fun () ->
      m.ring.(m.ok mod window_size) <- latency_ms;
      m.ok <- m.ok + 1;
      m.lat_sum <- m.lat_sum +. latency_ms;
      if latency_ms < m.lat_min then m.lat_min <- latency_ms;
      if latency_ms > m.lat_max then m.lat_max <- latency_ms)

let record_error m = with_lock m (fun () -> m.errors <- m.errors + 1)
let record_timeout m = with_lock m (fun () -> m.timeouts <- m.timeouts + 1)
let record_rejected m = with_lock m (fun () -> m.rejected <- m.rejected + 1)

let record_stats_request m =
  with_lock m (fun () -> m.stats_requests <- m.stats_requests + 1)

let record_worker_crash m =
  with_lock m (fun () -> m.worker_crashes <- m.worker_crashes + 1)

let record_restart m = with_lock m (fun () -> m.restarts <- m.restarts + 1)
let record_retry m = with_lock m (fun () -> m.retries <- m.retries + 1)
let record_degraded m = with_lock m (fun () -> m.degraded <- m.degraded + 1)

type latency = {
  count : int;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  p95_ms : float;
  window : int;
}

type snapshot = {
  requests : int;
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  stats_requests : int;
  worker_crashes : int;
  restarts : int;
  retries : int;
  degraded : int;
  latency : latency option;
}

let snapshot m =
  with_lock m (fun () ->
      let latency =
        if m.ok = 0 then None
        else
          let window = min m.ok window_size in
          (* With fewer than [window_size] samples only the prefix is
             live; past that the whole ring is the recent window (sample
             order is irrelevant to a quantile). *)
          let recent = Array.sub m.ring 0 window in
          Some
            {
              count = m.ok;
              mean_ms = m.lat_sum /. float_of_int m.ok;
              min_ms = m.lat_min;
              max_ms = m.lat_max;
              p95_ms = Suu_prob.Stats.quantile recent 0.95;
              window;
            }
      in
      {
        requests = m.ok + m.errors + m.timeouts + m.rejected;
        ok = m.ok;
        errors = m.errors;
        timeouts = m.timeouts;
        rejected = m.rejected;
        stats_requests = m.stats_requests;
        worker_crashes = m.worker_crashes;
        restarts = m.restarts;
        retries = m.retries;
        degraded = m.degraded;
        latency;
      })
