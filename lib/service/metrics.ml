(* Latency accounting is O(1) per request and bounded in memory: ok
   latencies land in a fixed-layout log-bucketed histogram
   (Suu_obs.Histogram), from which whole-run quantiles are read at
   snapshot time with bounded relative error. A long-lived service's
   metrics therefore cannot grow without bound, and a stats request
   costs O(buckets), not O(requests served). *)

module Histogram = Suu_obs.Histogram

type t = {
  lock : Mutex.t;
  mutable ok : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable stats_requests : int;
  mutable worker_crashes : int;
  mutable restarts : int;
  mutable retries : int;
  mutable degraded : int;
  lat : Histogram.t;  (* all ok latencies, ms *)
}

let create () =
  {
    lock = Mutex.create ();
    ok = 0;
    errors = 0;
    timeouts = 0;
    rejected = 0;
    stats_requests = 0;
    worker_crashes = 0;
    restarts = 0;
    retries = 0;
    degraded = 0;
    (* Default layout: 1 µs .. ~2.8 h at <= 15% relative error. *)
    lat = Histogram.create ();
  }

let with_lock m f =
  Mutex.lock m.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

let record_ok m ~latency_ms =
  with_lock m (fun () ->
      m.ok <- m.ok + 1;
      Histogram.add m.lat latency_ms)

let record_error m = with_lock m (fun () -> m.errors <- m.errors + 1)
let record_timeout m = with_lock m (fun () -> m.timeouts <- m.timeouts + 1)
let record_rejected m = with_lock m (fun () -> m.rejected <- m.rejected + 1)

let record_stats_request m =
  with_lock m (fun () -> m.stats_requests <- m.stats_requests + 1)

let record_worker_crash m =
  with_lock m (fun () -> m.worker_crashes <- m.worker_crashes + 1)

let record_restart m = with_lock m (fun () -> m.restarts <- m.restarts + 1)
let record_retry m = with_lock m (fun () -> m.retries <- m.retries + 1)
let record_degraded m = with_lock m (fun () -> m.degraded <- m.degraded + 1)

type latency = {
  count : int;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type snapshot = {
  requests : int;
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  stats_requests : int;
  worker_crashes : int;
  restarts : int;
  retries : int;
  degraded : int;
  latency : latency option;
  latency_hist : Histogram.t option;
}

let snapshot m =
  with_lock m (fun () ->
      let latency, latency_hist =
        if Histogram.count m.lat = 0 then (None, None)
        else
          ( Some
              {
                count = Histogram.count m.lat;
                mean_ms = Histogram.mean m.lat;
                min_ms = Histogram.min_value m.lat;
                max_ms = Histogram.max_value m.lat;
                p50_ms = Histogram.quantile m.lat 0.50;
                p95_ms = Histogram.quantile m.lat 0.95;
                p99_ms = Histogram.quantile m.lat 0.99;
              },
            Some (Histogram.copy m.lat) )
      in
      {
        requests = m.ok + m.errors + m.timeouts + m.rejected;
        ok = m.ok;
        errors = m.errors;
        timeouts = m.timeouts;
        rejected = m.rejected;
        stats_requests = m.stats_requests;
        worker_crashes = m.worker_crashes;
        restarts = m.restarts;
        retries = m.retries;
        degraded = m.degraded;
        latency;
        latency_hist;
      })
