(** MSM-ALG: greedy 1/3-approximation for MaxSumMass (paper §3.1, Fig. 2).

    MaxSumMass asks for a single-step assignment [f : M → J ∪ {⊥}]
    maximising the total job mass [Σ_j min(Σ_{i : f(i)=j} p_ij, 1)]. The
    greedy algorithm scans the pairs [(i, j)] by non-increasing [p_ij] and
    assigns machine [i] to job [j] whenever [i] is still free and [j]'s
    mass would stay ≤ 1; Theorem 3.2 proves the result is within a factor
    1/3 of optimal (the problem itself is NP-hard). *)

val sorted_pairs :
  Suu_core.Instance.t -> jobs:bool array -> (float * int * int) list
(** The positive-probability [(p_ij, i, j)] pairs over the flagged jobs in
    the greedy processing order: non-increasing [p_ij], ties by machine
    then job. A filtered list view of the order cached in
    {!Suu_core.Instance.sorted_pairs}; hot paths scan the cached arrays
    directly instead. *)

val assign :
  Suu_core.Instance.t -> jobs:bool array -> Suu_core.Assignment.t
(** One-step assignment over the jobs with [jobs.(j) = true] (the
    "unfinished" set the scheduler is targeting); other jobs receive no
    machines. Deterministic: ties are broken by machine then job index.
    O(nm): a single pass over the instance's cached pair order. *)

val assign_into :
  Suu_core.Instance.t ->
  jobs:bool array ->
  mass:float array ->
  Suu_core.Assignment.t ->
  unit
(** Allocation-free {!assign}: writes the assignment into the given
    array (length [m]) and the accumulated per-job mass into [mass]
    (length [n]), resetting both first. The per-step form used by
    adaptive policies inside the simulation loop. *)

val total_mass : Suu_core.Instance.t -> Suu_core.Assignment.t -> float
(** Objective value of an assignment: [Σ_j min(mass_j, 1)]. *)

val optimal_mass_brute_force : Suu_core.Instance.t -> jobs:bool array -> float
(** Exact MaxSumMass optimum by exhaustive search over all [(#jobs+1)^m]
    assignments — test oracle for the 1/3 guarantee; only for tiny
    instances.
    @raise Invalid_argument when the search space exceeds ~10⁷. *)
