(** Fixed-assignment policy: every job pinned to a single machine.

    Models the fixed-assignment regime of arXiv:1904.07271, where each
    job must be dedicated to one machine up front (no migration, no
    replication) and machines work through their pinned queues. The
    assignment is chosen by greedy load balancing over effective rates:
    jobs in decreasing order of their best expected duration
    [min_i 1/p_ij] (longest-processing-time first), each assigned to the
    machine minimising [current load + 1/p_ij] over machines with
    [p_ij > 0]. Within a machine the pinned jobs are served
    shortest-expected-processing-time first. The result is one
    (machine, job) pair per job, exposed through
    {!Suu_core.Policy.of_greedy_pairs} so it rides the vectorized
    trial-lane kernel — and, because no job appears twice, each machine
    simply advances through its own queue as jobs finish. *)

val assignment : Suu_core.Instance.t -> int array
(** [assignment inst] is the pinned machine of each job (index [j] holds
    the machine job [j] is dedicated to). Deterministic; every entry is
    a machine with [p > 0] for that job. *)

val policy : Suu_core.Instance.t -> Suu_core.Policy.t
(** The fixed-assignment policy (named ["suu-fixed"], structure
    {!Suu_core.Policy.Greedy_pairs}, exactly one pair per job). Works on
    every DAG class — precedence is respected through eligibility, each
    machine serving the eligible pinned job with the shortest expected
    duration. *)
