(** One-stop solver: classify the precedence DAG and dispatch to the
    matching algorithm from the paper.

    | DAG class            | adaptive                      | oblivious                    |
    |----------------------|-------------------------------|------------------------------|
    | independent          | SUU-I-ALG (Thm 3.3)           | LP-based (Thm 4.5)           |
    | disjoint chains      | SUU-I-ALG policy (heuristic)  | chain pipeline (Thm 4.4)     |
    | out-/in-trees        | SUU-I-ALG policy (heuristic)  | tree pipeline (Thm 4.8)      |
    | directed forest      | SUU-I-ALG policy (heuristic)  | forest pipeline (Thm 4.7)    |
    | general              | SUU-I-ALG policy (heuristic)  | unsupported, or {!Layered}   |

    The paper gives guarantees only for the oblivious column (plus the
    independent adaptive case); the adaptive column generalises MSM greedy
    assignment to eligible jobs and is exposed as the practical default.

    [`Improved] dispatches to the follow-up paper's family
    (arXiv:0802.2418, {!Improved}/{!Phased}): one oblivious scheme for
    {e every} DAG class — level decomposition with the phase-ladder
    independent subroutine per level — so it never raises
    {!Unsupported}.

    [`Lzf] and [`Fixed] are the dynamic-environment index-policy family
    ({!Lzf}, {!Fixed_assignment}): cheap adaptive regimens for online
    settings with release dates and machine churn. Both support every
    DAG class and never raise {!Unsupported}. *)

type kind = [ `Adaptive | `Oblivious | `Improved | `Lzf | `Fixed ]

exception Unsupported of string
(** Raised for [`Oblivious] on a general DAG unless [allow_heuristic] —
    the paper leaves this case open; {!Layered} only has a depth-dependent
    guarantee. *)

val solve :
  ?kind:kind ->
  ?allow_heuristic:bool ->
  ?params:Pipeline.params ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t
(** Dispatch ([kind] defaults to [`Oblivious], the guaranteed column).
    With [allow_heuristic] (default [false]), general DAGs fall back to
    the {!Layered} level-decomposition schedule instead of raising. *)

val algorithm_name :
  ?kind:kind -> ?allow_heuristic:bool -> Suu_core.Instance.t -> string
(** Which algorithm [solve] would pick, for reporting. *)
