module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

type params = {
  mass_target : float;
  rounds_per_guess : int -> int;
  early_exit : bool;
  t0 : int;
}

let log2 x = Float.log x /. Float.log 2.

let paper_params =
  {
    mass_target = 1. /. 96.;
    rounds_per_guess =
      (fun n -> max 1 (Float.to_int (Float.ceil (66. *. log2 (Float.of_int (max 2 n))))));
    early_exit = true;
    t0 = 1;
  }

let tuned_params =
  {
    mass_target = 0.25;
    rounds_per_guess =
      (fun n -> max 1 (Float.to_int (Float.ceil (8. *. log2 (Float.of_int (max 2 n))))));
    early_exit = true;
    t0 = 1;
  }

type result = {
  core : Oblivious.t;
  final_t : int;
  rounds_used : int;
  guesses : int;
}

let build ?(params = tuned_params) inst =
  let n = Instance.n inst and m = Instance.m inst in
  if n = 0 then
    { core = Oblivious.finite ~m [||]; final_t = 0; rounds_used = 0; guesses = 0 }
  else begin
    let max_rounds = params.rounds_per_guess n in
    let jobs = Accum.all_jobs inst in
    let attempt t =
      let o =
        Accum.accumulate inst ~jobs ~t ~mass_target:params.mass_target
          ~max_rounds ~early_exit:params.early_exit
      in
      if o.Accum.deficient_count > 0 then None else Some o
    in
    let o, final_t, guesses =
      Accum.doubling_guess inst ~t0:params.t0 ~attempt
    in
    { core = o.Accum.core; final_t; rounds_used = o.Accum.rounds; guesses }
  end

let schedule ?params inst =
  let r = build ?params inst in
  let prefix = r.core.Oblivious.prefix in
  if Array.length prefix = 0 then r.core
  else Oblivious.create ~m:(Instance.m inst) ~cycle:prefix [||]

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-i-obl" (schedule ?params inst)
