(** Shared mass-threshold round scheduling.

    Both oblivious independent-job schemes — the paper's Algorithm 2
    ({!Suu_i_obl}) and the improved phase ladder ({!Phased}) — are built
    from the same two moves: a {e round loop} that repeatedly appends
    MSM-E-ALG allocations of a fixed length [t] and retires jobs once a
    round gives them the target mass, and a {e guess-doubling driver}
    that searches for the smallest [t] at which the loop succeeds. This
    module is that refactored substrate; it owns no policy decisions
    (targets, round budgets, phase ladders stay with the callers). *)

type outcome = {
  core : Suu_core.Oblivious.t;
      (** the appended round pieces, chronological, empty cycle *)
  rounds : int;  (** rounds actually run *)
  deficient : bool array;
      (** jobs still below the target after the last round *)
  deficient_count : int;
}

val accumulate :
  Suu_core.Instance.t ->
  jobs:bool array ->
  t:int ->
  mass_target:float ->
  max_rounds:int ->
  early_exit:bool ->
  outcome
(** Run up to [max_rounds] rounds of length-[t] MSM-E-ALG allocations
    over the flagged jobs, retiring each job in the first round that
    gives it mass ≥ [mass_target] (within the allocator's own float
    slack). With [early_exit], a round that retires nothing ends the
    loop — the guess [t] is hopeless and the caller should grow it.
    [jobs] is not mutated. *)

val all_jobs : Suu_core.Instance.t -> bool array
(** The everything-flagged mask, [Array.make n true]. *)

val doubling_guess :
  Suu_core.Instance.t ->
  t0:int ->
  attempt:(int -> 'a option) ->
  'a * int * int
(** [doubling_guess inst ~t0 ~attempt] tries [attempt t] at [t0], [2·t0],
    [4·t0], … until it returns [Some result], and gives
    [(result, final_t, guesses)]. §3.2: a guess of O(n / p_min) always
    succeeds, so the search terminates; a defensive cap of that order
    turns a broken [attempt] into [Invalid_argument] instead of a hang. *)
