module Instance = Suu_core.Instance

type result = {
  x : int array array;
  mass : float array;
  length : int;
}

let allocate inst ~jobs ~t =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Msm_ext.allocate: jobs length mismatch";
  if t < 0 then invalid_arg "Msm_ext.allocate: negative length";
  let m = Instance.m inst and n = Instance.n inst in
  let x = Array.make_matrix m n 0 in
  let mass = Array.make n 0. in
  let capacity = Array.make m t in
  (* One pass over the instance's cached greedy pair order (no per-call
     rebuild-and-sort), skipping pairs whose job is not flagged. *)
  let ps, ms, js = Instance.sorted_pairs inst in
  for k = 0 to Array.length ps - 1 do
    let j = js.(k) in
    if jobs.(j) then begin
      let i = ms.(k) in
      let p = ps.(k) in
      if capacity.(i) > 0 && mass.(j) < 1. then begin
        (* Headroom in steps before job j's mass would exceed 1; guard the
           float→int conversion against tiny p. *)
        let headroom_f = Float.floor ((1. -. mass.(j)) /. p) in
        let steps =
          if headroom_f >= Float.of_int capacity.(i) then capacity.(i)
          else min capacity.(i) (Float.to_int headroom_f)
        in
        if steps > 0 then begin
          x.(i).(j) <- steps;
          mass.(j) <- mass.(j) +. (Float.of_int steps *. p);
          capacity.(i) <- capacity.(i) - steps
        end
      end
    end
  done;
  { x; mass; length = t }

let to_schedule inst r =
  Suu_core.Oblivious.of_matrix ~m:(Instance.m inst) ~n:(Instance.n inst) r.x

let total_mass r =
  Array.fold_left (fun acc mj -> acc +. Float.min mj 1.) 0. r.mass

let optimal_mass_brute_force inst ~jobs ~t =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Msm_ext.optimal_mass_brute_force: jobs length mismatch";
  if t < 0 then invalid_arg "Msm_ext.optimal_mass_brute_force: negative length";
  let m = Instance.m inst and n = Instance.n inst in
  (* Steps on pairs with p_ij = 0 (or unflagged jobs) add no mass, so the
     optimum is attained allocating only to each machine's positive-
     probability flagged jobs. *)
  let targets =
    Array.init m (fun i ->
        List.filter
          (fun j -> jobs.(j) && Instance.prob inst ~machine:i ~job:j > 0.)
          (List.init n (fun j -> j)))
  in
  (* Allocations of at most [t] steps over [k] jobs number C(t+k, k); gate
     the product before searching. *)
  let compositions k =
    let acc = ref 1. in
    for q = 1 to k do
      acc := !acc *. Float.of_int (t + q) /. Float.of_int q
    done;
    !acc
  in
  let space =
    Array.fold_left
      (fun acc ts -> acc *. compositions (List.length ts))
      1. targets
  in
  if space > 1e7 then
    invalid_arg "Msm_ext.optimal_mass_brute_force: search space too large";
  let mass = Array.make n 0. in
  let best = ref 0. in
  let rec machine i =
    if i = m then
      best :=
        Float.max !best
          (Array.fold_left (fun acc mj -> acc +. Float.min mj 1.) 0. mass)
    else distribute i targets.(i) t
  and distribute i ts cap =
    match ts with
    | [] -> machine (i + 1)
    | j :: rest ->
        let p = Instance.prob inst ~machine:i ~job:j in
        for steps = 0 to cap do
          mass.(j) <- mass.(j) +. (Float.of_int steps *. p);
          distribute i rest (cap - steps);
          mass.(j) <- mass.(j) -. (Float.of_int steps *. p)
        done
  in
  machine 0;
  !best
