module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

type params = {
  mass_target : float;
  rounds_per_guess : int -> int;
  boost : bool;
  t0 : int;
}

let log2 x = Float.log x /. Float.log 2.

let tuned_params =
  {
    mass_target = 0.25;
    rounds_per_guess =
      (fun n -> max 1 (Float.to_int (Float.ceil (8. *. log2 (Float.of_int (max 2 n))))));
    boost = true;
    t0 = 1;
  }

(* The squaring ladder u_1 > u_2 > … of boost-phase sizes: u_{k+1} =
   ⌈√u_k⌉ until the sizes stop shrinking, then a final singleton phase.
   Squaring the survivor count each phase is what caps the ladder at
   O(log log u) phases — the shape of the follow-up paper's improvement
   (arXiv:0802.2418) over Algorithm 2's uniform O(log n) rounds. *)
let boost_ladder u0 =
  let rec grow acc u =
    let next = Float.to_int (Float.ceil (Float.sqrt (Float.of_int u))) in
    if next >= u || next <= 1 then
      if u > 1 then List.rev (1 :: acc) else List.rev acc
    else grow (u :: acc) next
  in
  if u0 <= 1 then [] else grow [] (Float.to_int (Float.ceil (Float.sqrt (Float.of_int u0))))

(* Hardest-first job order: ascending total rate Σ_i p_ij (ties by
   index), i.e. the jobs that accumulate mass slowest — the ones most
   likely to be the unfinished stragglers every later phase is for. The
   order is a function of the instance alone, so the schedule stays
   oblivious (Definition 2.3). *)
let hardness_order inst ~jobs =
  let flagged = ref [] in
  Array.iteri (fun j on -> if on then flagged := j :: !flagged) jobs;
  List.sort
    (fun a b ->
      let ra = Instance.total_rate inst a and rb = Instance.total_rate inst b in
      if ra < rb then -1 else if ra > rb then 1 else compare a b)
    (List.rev !flagged)

(* The ladder concentrates machines on the predicted stragglers — which
   only exist when the rate profile actually spreads. On a near-uniform
   profile every job is equally likely to linger, the "hardest" set is
   arbitrary, and each ladder step just delays the tail for whichever
   jobs actually survived; so the boost is gated on a 2x spread between
   the slowest and fastest flagged job. *)
let boost_pays inst ~jobs =
  let lo = ref infinity and hi = ref 0. in
  Array.iteri
    (fun j on ->
      if on then begin
        let r = Instance.total_rate inst j in
        if r < !lo then lo := r;
        if r > !hi then hi := r
      end)
    jobs;
  !hi >= 2. *. !lo

type build = {
  core : Oblivious.t;  (** base phase + boost phases appended *)
  base : Oblivious.t;  (** the base phase alone (the repeatable part) *)
  final_t : int;
  phases : int;  (** base phase + boost phases appended *)
}

(* An improved core for the flagged jobs. Base phase: Algorithm 2's
   round loop (shared {!Accum} substrate) brings every flagged job to
   the target mass. Boost phases: for each ladder size u, re-run the
   loop over just the u hardest jobs — MSM-E-ALG then concentrates all
   m machines' steps on them, so stragglers collect a full extra target
   of mass per phase at a fraction of the base phase's length. Each
   phase keeps the guess length that already proved feasible and only
   grows it (doubling) if the subset somehow needs more. *)
let core_for ?(params = tuned_params) inst ~jobs =
  let m = Instance.m inst in
  let count = Array.fold_left (fun acc j -> if j then acc + 1 else acc) 0 jobs in
  if count = 0 then
    let empty = Oblivious.finite ~m [||] in
    { core = empty; base = empty; final_t = 0; phases = 0 }
  else begin
    let max_rounds = params.rounds_per_guess count in
    let phase ~jobs ~t0 =
      let attempt t =
        let o =
          Accum.accumulate inst ~jobs ~t ~mass_target:params.mass_target
            ~max_rounds ~early_exit:true
        in
        if o.Accum.deficient_count > 0 then None else Some o
      in
      let o, final_t, _ = Accum.doubling_guess inst ~t0 ~attempt in
      (o.Accum.core, final_t)
    in
    let base_core, base_t = phase ~jobs ~t0:params.t0 in
    if not (params.boost && boost_pays inst ~jobs) then
      { core = base_core; base = base_core; final_t = base_t; phases = 1 }
    else begin
      let order = hardness_order inst ~jobs in
      let phase_for u =
        let mask = Array.make (Instance.n inst) false in
        List.iteri (fun k j -> if k < u then mask.(j) <- true) order;
        phase ~jobs:mask ~t0:base_t
      in
      let ladder = boost_ladder count in
      let core, phases =
        List.fold_left
          (fun (acc, k) u ->
            let piece, _ = phase_for u in
            (Oblivious.append acc piece, k + 1))
          (base_core, 1) ladder
      in
      { core; base = base_core; final_t = base_t; phases }
    end
  end

let build ?params inst = core_for ?params inst ~jobs:(Accum.all_jobs inst)

(* Which infinite tail kills the slowest job fastest? Two oblivious
   candidates:

   - repeating the base phase: every job collects >= mass_target per
     [base_len] steps (that is the phase's invariant), so the worst
     per-step hazard rate is [mass_target / base_len];
   - the paper's concentration tail ({!Oblivious.cycle_all_jobs}, all
     [m] machines on one job, cycling in topological order): job [j]
     collects min(1, sum_i p_ij) per [n] steps, so the worst rate is
     [min_j min(1, total_rate j) / n].

   Concentration wins on dense uniform instances (the capped mass 1 per
   visit dwarfs the shared-phase target) and loses whenever one job's
   total rate is so small that even every machine at once barely moves
   it. Both rates are functions of the instance alone — never of trial
   outcomes — so choosing between them keeps the schedule oblivious
   (Definition 2.3). *)
let concentration_tail_wins inst ~base_len =
  let n = Instance.n inst in
  if n = 0 || base_len = 0 then false
  else begin
    let min_rate = ref infinity in
    for j = 0 to n - 1 do
      let r = Float.min 1. (Instance.total_rate inst j) in
      if r < !min_rate then min_rate := r
    done;
    !min_rate /. Float.of_int n
    >= tuned_params.mass_target /. Float.of_int base_len
  end

(* The schedule: run the boosted core once (the ladder's concentrated
   help for likely stragglers pays once, up front — repeating it would
   stretch every later cycle for jobs that are long dead), then settle
   into the better of the two infinite tails. *)
let schedule ?params inst =
  let r = build ?params inst in
  let m = Instance.m inst in
  let base_len = Oblivious.prefix_length r.base in
  if Array.length r.core.Oblivious.prefix = 0 then r.core
  else if concentration_tail_wins inst ~base_len then
    Oblivious.with_fallback inst (Oblivious.finite ~m r.core.Oblivious.prefix)
  else
    Oblivious.create ~m ~cycle:r.base.Oblivious.prefix r.core.Oblivious.prefix

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-imp" (schedule ?params inst)
