module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

(* Expected duration of job [j] on machine [i] in steps: 1/p_ij. *)
let duration inst ~machine ~job =
  let p = Instance.prob inst ~machine ~job in
  if p > 0. then 1. /. p else infinity

let assignment inst =
  let n = Instance.n inst and m = Instance.m inst in
  let best j =
    let d = ref infinity in
    for i = 0 to m - 1 do
      let di = duration inst ~machine:i ~job:j in
      if di < !d then d := di
    done;
    !d
  in
  (* LPT over best-case durations: placing the expensive jobs first keeps
     the greedy balance honest; ties break on job index. *)
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun j1 j2 ->
      let c = compare (best j2) (best j1) in
      if c <> 0 then c else compare j1 j2)
    order;
  let load = Array.make m 0. in
  let pinned = Array.make n (-1) in
  Array.iter
    (fun j ->
      let bi = ref (-1) and bc = ref infinity in
      for i = 0 to m - 1 do
        let d = duration inst ~machine:i ~job:j in
        if d < infinity then begin
          let c = load.(i) +. d in
          if c < !bc then begin
            bc := c;
            bi := i
          end
        end
      done;
      (* Instances guarantee every job is feasible on some machine. *)
      pinned.(j) <- !bi;
      load.(!bi) <- !bc)
    order;
  pinned

let policy inst =
  let n = Instance.n inst and m = Instance.m inst in
  let pinned = assignment inst in
  (* One pair per job, ordered SEPT so each machine's scan hits its
     shortest eligible pinned job first; ties break on job index. *)
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun j1 j2 ->
      let d1 = duration inst ~machine:pinned.(j1) ~job:j1
      and d2 = duration inst ~machine:pinned.(j2) ~job:j2 in
      let c = compare d1 d2 in
      if c <> 0 then c else compare j1 j2)
    order;
  Policy.of_greedy_pairs "suu-fixed" ~n ~m
    ~probs:
      (Array.map (fun j -> Instance.prob inst ~machine:pinned.(j) ~job:j) order)
    ~machines:(Array.map (fun j -> pinned.(j)) order)
    ~jobs:order
