(** The improved approximations as a one-stop DAG scheme
    (arXiv:0802.2418 via this repo's substrates).

    Level-decompose the DAG ({!Suu_dag.Dag.levels} — the substrate shared
    with {!Layered}) and run the improved independent-jobs phase ladder
    ({!Phased.core_for}) over each level in order: the boosted cores run
    once as prefix, then the better oblivious tail repeats (the
    concatenated base cores, or the concentration tail when
    {!Phased.concentration_tail_wins}). Independent instances have a
    single level, so this
    degenerates to exactly {!Phased}. Unlike the paper's oblivious
    column ({!Solver} with [`Oblivious]), every DAG class is supported —
    levels are antichains and all edges point forward, so precedence is
    respected by the execution semantics (ineligible assignments idle).

    Compared against the Lin–Rajaraman family head-to-head in EXP-RACE;
    validity and ratio-vs-TOPT are pinned by the [improved-validity] and
    [improved-ratio] conformance properties over the full generator
    grid. *)

type build = {
  core : Suu_core.Oblivious.t;  (** per-level improved cores, appended *)
  base : Suu_core.Oblivious.t;
      (** per-level {e base} cores, appended — the repeatable tail *)
  levels : int;  (** level count (DAG depth) *)
  phases : int;  (** total phases across all levels *)
}

val build : ?params:Phased.params -> Suu_core.Instance.t -> build

val schedule :
  ?params:Phased.params -> Suu_core.Instance.t -> Suu_core.Oblivious.t
(** The boosted core once as prefix, then the better oblivious tail
    forever ({!Phased.concentration_tail_wins}). *)

val policy :
  ?params:Phased.params -> Suu_core.Instance.t -> Suu_core.Policy.t
(** {!schedule} wrapped as the policy ["suu-imp"]. *)
