module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment

(* The greedy processing order — pairs by non-increasing p_ij, ties by
   machine then job — is precomputed once per instance and cached there
   (Instance.sorted_pairs); this wrapper only survives as a list view
   for tests and callers that want the filtered pair list itself. *)
let sorted_pairs inst ~jobs =
  let ps, ms, js = Instance.sorted_pairs inst in
  let acc = ref [] in
  for k = Array.length ps - 1 downto 0 do
    if jobs.(js.(k)) then acc := (ps.(k), ms.(k), js.(k)) :: !acc
  done;
  !acc

(* Core greedy scan, writing into caller-provided scratch: [a] receives
   the assignment, [mass] the accumulated per-job mass. O(nm) per call —
   one pass over the cached sorted pairs, no allocation. *)
let assign_into inst ~jobs ~mass a =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Msm.assign: jobs length mismatch";
  Array.fill a 0 (Array.length a) Assignment.idle_job;
  Array.fill mass 0 (Array.length mass) 0.;
  let ps, ms, js = Instance.sorted_pairs inst in
  for k = 0 to Array.length ps - 1 do
    let j = js.(k) in
    if jobs.(j) then begin
      let i = ms.(k) in
      let p = ps.(k) in
      if a.(i) = Assignment.idle_job && mass.(j) +. p <= 1. +. 1e-12 then begin
        a.(i) <- j;
        mass.(j) <- mass.(j) +. p
      end
    end
  done

let assign inst ~jobs =
  let a = Assignment.idle (Instance.m inst) in
  let mass = Array.make (Instance.n inst) 0. in
  assign_into inst ~jobs ~mass a;
  a

let total_mass inst a =
  let mass = Assignment.mass_added inst a in
  Array.fold_left (fun acc mj -> acc +. Float.min mj 1.) 0. mass

let optimal_mass_brute_force inst ~jobs =
  let m = Instance.m inst and n = Instance.n inst in
  let targets =
    Array.of_list
      (List.filter (fun j -> jobs.(j)) (List.init n (fun j -> j)))
  in
  let k = Array.length targets in
  let space = Float.of_int (k + 1) ** Float.of_int m in
  if space > 1e7 then
    invalid_arg "Msm.optimal_mass_brute_force: search space too large";
  let a = Assignment.idle m in
  let best = ref 0. in
  let rec search i =
    if i = m then best := Float.max !best (total_mass inst a)
    else begin
      a.(i) <- Assignment.idle_job;
      search (i + 1);
      Array.iter
        (fun j ->
          a.(i) <- j;
          search (i + 1))
        targets;
      a.(i) <- Assignment.idle_job
    end
  in
  search 0;
  !best
