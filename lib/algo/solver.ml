module Classify = Suu_dag.Classify

type kind = [ `Adaptive | `Oblivious | `Improved | `Lzf | `Fixed ]

exception Unsupported of string

let shape inst = Classify.classify (Suu_core.Instance.dag inst)

let algorithm_name ?(kind = `Oblivious) ?(allow_heuristic = false) inst =
  match kind with
  | `Adaptive -> "suu-i-alg"
  | `Improved -> "suu-imp"
  | `Lzf -> "suu-lzf"
  | `Fixed -> "suu-fixed"
  | `Oblivious -> (
      match shape inst with
      | Classify.Independent -> "lp-indep"
      | Classify.Chains -> "suu-c"
      | Classify.Out_trees | Classify.In_trees -> "suu-trees"
      | Classify.Forest -> "suu-forest"
      | Classify.General ->
          if allow_heuristic then "suu-layered" else "unsupported")

let solve ?(kind = `Oblivious) ?(allow_heuristic = false) ?params inst =
  match kind with
  | `Adaptive -> Suu_i.policy inst
  | `Improved ->
      (* The improved family ignores the Pipeline constants knob: its
         only tunables live in Phased.params. Supports every DAG. *)
      Improved.policy inst
  | `Lzf -> Lzf.policy inst
  | `Fixed -> Fixed_assignment.policy inst
  | `Oblivious -> (
      match shape inst with
      | Classify.Independent ->
          let constants =
            Option.map (fun p -> p.Pipeline.constants) params
          in
          Lp_indep.policy ?constants inst
      | Classify.Chains -> Chains.policy ?params inst
      | Classify.Out_trees | Classify.In_trees -> Trees.policy ?params inst
      | Classify.Forest -> Forest.policy ?params inst
      | Classify.General ->
          if allow_heuristic then Layered.policy ?params inst
          else
            raise
              (Unsupported
                 "oblivious schedules for general DAGs are an open problem \
                  (paper §5); use ~kind:`Adaptive or ~allow_heuristic:true"))
