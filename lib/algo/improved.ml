module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious
module Dag = Suu_dag.Dag

type build = {
  core : Oblivious.t;
  base : Oblivious.t;
  levels : int;
  phases : int;
}

(* One improved core per level, concatenated shallowest first. Every
   precedence edge crosses from an earlier level to a strictly later one
   (Dag.levels), so by the time the cycle reaches a level's section its
   jobs' predecessors have had a full covering pass; machines assigned
   to a still-ineligible job simply idle for that step (Definition 2.1),
   so the schedule is valid on any DAG — no Unsupported case. *)
let build ?params inst =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let levels = Dag.levels (Instance.dag inst) in
  let core, phases =
    List.fold_left
      (fun (acc, phases) level ->
        let jobs = Array.make n false in
        List.iter (fun j -> jobs.(j) <- true) level;
        let b = Phased.core_for ?params inst ~jobs in
        (Oblivious.append acc b.Phased.core, phases + b.Phased.phases))
      (Oblivious.finite ~m [||], 0)
      levels
  in
  (* The tail needs no level structure: one global base pass covers
     every job to the mass target in far fewer steps than the per-level
     cores concatenated (each level would pay its own round budget), and
     jobs whose predecessors are unfinished simply idle their steps. *)
  let base = (Phased.core_for ?params inst ~jobs:(Accum.all_jobs inst)).Phased.base in
  { core; base; levels = List.length levels; phases }

(* Same prefix/tail split as {!Phased.schedule}: the boosted level cores
   run once up front, then the better oblivious tail repeats — the
   concatenated {e base} cores (every job >= the mass target per cycle)
   or, when the rate profile lets it saturate, the paper's concentration
   tail in topological order. *)
let schedule ?params inst =
  let r = build ?params inst in
  let m = Instance.m inst in
  let base_len = Oblivious.prefix_length r.base in
  if Array.length r.core.Oblivious.prefix = 0 then r.core
  else if Phased.concentration_tail_wins inst ~base_len then
    Oblivious.with_fallback inst (Oblivious.finite ~m r.core.Oblivious.prefix)
  else
    Oblivious.create ~m ~cycle:r.base.Oblivious.prefix r.core.Oblivious.prefix

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-imp" (schedule ?params inst)
