let policy inst =
  let n = Suu_core.Instance.n inst and m = Suu_core.Instance.m inst in
  (* Scratch is allocated once per execution (fresh), not once per step:
     the simulation loop then runs MSM-ALG allocation-free. *)
  Suu_core.Policy.make "suu-i-alg" (fun () ->
      let a = Suu_core.Assignment.idle m in
      let mass = Array.make n 0. in
      fun state ->
        Msm.assign_into inst ~jobs:state.Suu_core.Policy.eligible ~mass a;
        a)
