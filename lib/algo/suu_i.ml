let policy inst =
  let n = Suu_core.Instance.n inst and m = Suu_core.Instance.m inst in
  (* MSM-ALG's allocation loop is a greedy pair scan over the sort-once
     pair arrays; exporting it structurally (rather than as an opaque
     closure over Msm.assign_into) lets the engine vectorize it across
     trial lanes. The scalar decision function is bit-identical to the
     previous Msm.assign_into-based one. *)
  let probs, machines, jobs = Suu_core.Instance.sorted_pairs inst in
  Suu_core.Policy.of_greedy_pairs "suu-i-alg" ~n ~m ~probs ~machines ~jobs
