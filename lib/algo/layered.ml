module Dag = Suu_dag.Dag

let levels = Dag.levels

let blocks inst =
  levels (Suu_core.Instance.dag inst)
  |> List.map (fun level -> List.map (fun j -> [ j ]) level)

let build ?params inst = Pipeline.build ?params inst ~blocks:(blocks inst)

let schedule ?params inst = (build ?params inst).Pipeline.schedule

let policy ?params inst =
  Suu_core.Policy.of_oblivious "suu-layered" (schedule ?params inst)
