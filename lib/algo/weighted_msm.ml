module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Dag = Suu_dag.Dag

type weighting = Uniform | Descendants | Critical_path

let weights inst = function
  | Uniform -> Array.make (Instance.n inst) 1.
  | Descendants ->
      (* Count true descendants via reachability (descendant_counts is only
         exact on forests). *)
      let dag = Instance.dag inst in
      let r = Dag.reachable dag in
      Array.init (Instance.n inst) (fun j ->
          let count = ref 0 in
          Array.iter (fun reachable -> if reachable then incr count) r.(j);
          Float.of_int (1 + !count))
  | Critical_path ->
      let dag = Instance.dag inst in
      let n = Instance.n inst in
      let depth = Array.make n 1 in
      let topo = Dag.topo_order dag in
      for k = n - 1 downto 0 do
        let u = topo.(k) in
        List.iter
          (fun v -> if depth.(v) + 1 > depth.(u) then depth.(u) <- depth.(v) + 1)
          (Dag.succs dag u)
      done;
      Array.map Float.of_int depth

(* Ranking of the instance's cached pair order by p_ij · w_j (descending;
   ties by machine then job): pair indices into Instance.sorted_pairs.
   Computed once per weight vector — per policy, not per step. *)
let ranking inst ~weights =
  if Array.length weights <> Instance.n inst then
    invalid_arg "Weighted_msm.ranking: weights length mismatch";
  let ps, ms, js = Instance.sorted_pairs inst in
  let k = Array.length ps in
  let order = Array.init k (fun q -> q) in
  let score q = ps.(q) *. weights.(js.(q)) in
  Array.sort
    (fun a b ->
      match Float.compare (score b) (score a) with
      | 0 -> compare (ms.(a), js.(a)) (ms.(b), js.(b))
      | c -> c)
    order;
  order

(* Greedy scan over a precomputed ranking, writing into caller scratch. *)
let assign_ranked_into inst ~order ~jobs ~mass a =
  if Array.length jobs <> Instance.n inst then
    invalid_arg "Weighted_msm.assign: jobs length mismatch";
  Array.fill a 0 (Array.length a) Assignment.idle_job;
  Array.fill mass 0 (Array.length mass) 0.;
  let ps, ms, js = Instance.sorted_pairs inst in
  for q = 0 to Array.length order - 1 do
    let k = order.(q) in
    let j = js.(k) in
    if jobs.(j) then begin
      let i = ms.(k) in
      let p = ps.(k) in
      if a.(i) = Assignment.idle_job && mass.(j) +. p <= 1. +. 1e-12 then begin
        a.(i) <- j;
        mass.(j) <- mass.(j) +. p
      end
    end
  done

let assign inst ~weights ~jobs =
  if Array.length weights <> Instance.n inst then
    invalid_arg "Weighted_msm.assign: weights length mismatch";
  let a = Assignment.idle (Instance.m inst) in
  let mass = Array.make (Instance.n inst) 0. in
  assign_ranked_into inst ~order:(ranking inst ~weights) ~jobs ~mass a;
  a

let name_of = function
  | Uniform -> "msm-uniform"
  | Descendants -> "msm-descendants"
  | Critical_path -> "msm-critical-path"

let policy ?(weighting = Critical_path) inst =
  let w = weights inst weighting in
  let order = ranking inst ~weights:w in
  let n = Instance.n inst and m = Instance.m inst in
  Suu_core.Policy.make (name_of weighting) (fun () ->
      let a = Assignment.idle m in
      let mass = Array.make n 0. in
      fun state ->
        assign_ranked_into inst ~order
          ~jobs:state.Suu_core.Policy.eligible ~mass a;
        a)
