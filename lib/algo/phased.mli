(** Improved oblivious scheme for independent jobs — the phase ladder of
    the follow-up paper (Crutchfield–Dzunic–Fineman–Karger–Scott,
    "Improved Approximations for Multiprocessor Scheduling Under
    Uncertainty", arXiv:0802.2418), built on the same substrates as
    Algorithm 2.

    Algorithm 2 ({!Suu_i_obl}) treats every job identically in every
    round. The follow-up paper's observation is that after the first
    covering phase most jobs are already done, so later phases should
    concentrate the machines on the few likely survivors. Obliviously we
    cannot observe survivors, but the survivor {e distribution} is known
    in advance: jobs with the smallest total rate [Σ_i p_ij] linger
    longest. The scheme therefore appends, after the base covering phase
    (the shared {!Accum} round loop at the target mass), a ladder of
    boost phases over the [u] hardest jobs with [u] shrinking by
    repeated square roots — O(log log n) phases, the shape of the
    improved bound — so stragglers receive all [m] machines' attention
    and a full extra mass target per phase at a fraction of the base
    phase's length. Constants follow the repo's tuned conventions
    (mass target 1/4, ⌈8·log₂ n⌉ rounds per guess); ratios are measured
    against the Lin–Rajaraman family in EXP-RACE and pinned by the
    [improved-*] conformance properties. *)

type params = {
  mass_target : float;  (** per-phase mass every covered job must reach *)
  rounds_per_guess : int -> int;  (** round budget per doubling guess *)
  boost : bool;  (** append the hardest-first boost ladder *)
  t0 : int;  (** initial guess for the per-round schedule length *)
}

val tuned_params : params

val boost_ladder : int -> int list
(** The boost-phase sizes for an [n]-job base phase: [⌈√n⌉, ⌈√√n⌉, …, 1]
    (strictly decreasing, O(log log n) entries, empty for [n ≤ 1]). *)

val hardness_order : Suu_core.Instance.t -> jobs:bool array -> int list
(** Flagged jobs sorted hardest first: ascending total rate [Σ_i p_ij],
    ties by index. A pure function of the instance, so schedules built
    from it remain oblivious. *)

type build = {
  core : Suu_core.Oblivious.t;
      (** base phase then boost phases, appended; empty cycle *)
  base : Suu_core.Oblivious.t;
      (** the base phase alone — the part worth repeating forever, since
          it covers {e every} flagged job to the mass target *)
  final_t : int;  (** accepted guess length of the base phase *)
  phases : int;  (** 1 base + ladder length *)
}

val core_for :
  ?params:params -> Suu_core.Instance.t -> jobs:bool array -> build
(** The improved core covering just the flagged jobs — the per-level
    subroutine of the DAG scheme ({!Improved}). Every flagged job
    accumulates at least the target mass over the base phase alone. *)

val build : ?params:params -> Suu_core.Instance.t -> build
(** [core_for] over all jobs. *)

val concentration_tail_wins : Suu_core.Instance.t -> base_len:int -> bool
(** Should the infinite tail be {!Suu_core.Oblivious.cycle_all_jobs}
    (all machines concentrated on one job per step) rather than the
    repeated base phase? True iff the concentration tail's worst-case
    per-step hazard rate [min_j min(1, Σ_i p_ij) / n] is at least the
    base phase's [mass_target / base_len]. A function of the rate
    profile only — never of trial outcomes — so either choice keeps the
    schedule oblivious. Shared with the DAG scheme ({!Improved}). *)

val schedule : ?params:params -> Suu_core.Instance.t -> Suu_core.Oblivious.t
(** The boosted core once as prefix (the ladder's concentrated help for
    likely stragglers pays once, up front), then the better oblivious
    tail forever: the base phase repeated, or the concentration tail
    when {!concentration_tail_wins}. *)

val policy : ?params:params -> Suu_core.Instance.t -> Suu_core.Policy.t
(** {!schedule} wrapped as the policy ["suu-imp"]. *)
