module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Policy = Suu_core.Policy

let eligible_list state =
  let acc = ref [] in
  Array.iteri
    (fun j e -> if e then acc := j :: !acc)
    state.Policy.eligible;
  List.rev !acc

let greedy_rate inst =
  Policy.stateless "greedy-rate" (fun state ->
      let m = Instance.m inst in
      let a = Assignment.idle m in
      let eligible = eligible_list state in
      for i = 0 to m - 1 do
        let best = ref Assignment.idle_job and best_p = ref 0. in
        List.iter
          (fun j ->
            let p = Instance.prob inst ~machine:i ~job:j in
            if p > !best_p then begin
              best_p := p;
              best := j
            end)
          eligible;
        a.(i) <- !best
      done;
      a)

let round_robin inst =
  Policy.stateless "round-robin" (fun state ->
      let m = Instance.m inst in
      let a = Assignment.idle m in
      let eligible = Array.of_list (eligible_list state) in
      let k = Array.length eligible in
      if k > 0 then
        for i = 0 to m - 1 do
          a.(i) <- eligible.((i + state.Policy.step) mod k)
        done;
      a)

let serial_all_machines inst =
  let topo = Suu_dag.Dag.topo_order (Instance.dag inst) in
  Policy.stateless "serial-all-machines" (fun state ->
      let m = Instance.m inst in
      let target =
        Array.fold_left
          (fun acc j ->
            match acc with
            | Some _ -> acc
            | None -> if state.Policy.eligible.(j) then Some j else None)
          None topo
      in
      match target with
      | None -> Assignment.idle m
      | Some j -> Array.make m j)

let random_assignment ~seed inst =
  Policy.make "random" (fun () ->
      let rng = Suu_prob.Rng.create seed in
      fun state ->
        let m = Instance.m inst in
        let a = Assignment.idle m in
        let eligible = Array.of_list (eligible_list state) in
        if Array.length eligible > 0 then
          for i = 0 to m - 1 do
            a.(i) <- Suu_prob.Rng.pick rng eligible
          done;
        a)

let static_best_machine inst =
  let n = Instance.n inst and m = Instance.m inst in
  let topo = Suu_dag.Dag.topo_order (Instance.dag inst) in
  (* Per machine, the list of jobs whose best machine it is, in topological
     order; each machine cycles through its own list, one step per job. *)
  let x = Array.make_matrix m n 0 in
  Array.iter (fun j -> x.(Instance.best_machine inst j).(j) <- 1) topo;
  let one_pass = Suu_core.Oblivious.of_matrix ~m ~n x in
  let prefix = one_pass.Suu_core.Oblivious.prefix in
  let sched =
    if Array.length prefix = 0 then Suu_core.Oblivious.with_fallback inst one_pass
    else Suu_core.Oblivious.create ~m ~cycle:prefix [||]
  in
  Policy.of_oblivious "static-best-machine" sched

let all ~seed inst =
  [
    greedy_rate inst;
    round_robin inst;
    serial_all_machines inst;
    random_assignment ~seed inst;
    static_best_machine inst;
  ]
