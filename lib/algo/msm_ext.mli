(** MSM-E-ALG: 1/3-approximation for MaxSumMass-Ext (paper §3.2, Alg. 1).

    MaxSumMass-Ext generalises MaxSumMass to oblivious schedules of length
    [t]: each machine may be assigned up to [t] job-steps, and the goal is
    to maximise [Σ_j min(Σ_i p_ij x_ij, 1)] where [x_ij] is the number of
    steps machine [i] spends on job [j]. The greedy scan is the same as
    MSM-ALG but allocates, for each pair in non-increasing [p_ij] order, as
    many steps as the machine's remaining capacity and the job's remaining
    mass headroom allow: [x_ij = min(t_i, ⌊(1 − Σ_k x_kj p_kj) / p_ij⌋)].
    Lemma 3.4: the result is within 1/3 of optimal, and the running time is
    independent of [t]. *)

type result = {
  x : int array array;  (** x.(i).(j): steps of machine [i] on job [j] *)
  mass : float array;  (** per-job accumulated mass [Σ_i p_ij x_ij] *)
  length : int;  (** the requested schedule length [t] *)
}

val allocate : Suu_core.Instance.t -> jobs:bool array -> t:int -> result
(** Allocate machine steps to the flagged jobs for a schedule of length
    [t ≥ 0]. *)

val to_schedule : Suu_core.Instance.t -> result -> Suu_core.Oblivious.t
(** Pack the allocation into an oblivious schedule of length ≤ [t] (each
    machine works through its jobs in index order — the paper's
    [f_τ] specification). *)

val total_mass : result -> float
(** Objective value [Σ_j min(mass_j, 1)]. *)

val optimal_mass_brute_force :
  Suu_core.Instance.t -> jobs:bool array -> t:int -> float
(** Exact MaxSumMass-Ext optimum by exhaustive search over all integer
    allocations [x] with [Σ_j x_ij ≤ t] — the test oracle for Lemma 3.4's
    1/3 guarantee, only for tiny instances and lengths.
    @raise Invalid_argument when the search space exceeds ~10⁷. *)
