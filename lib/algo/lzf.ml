module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

let z_ratio p = if p >= 1. then infinity else p /. (1. -. p)

(* Z-ratio is strictly increasing in p, so descending-Z order is
   descending-p order; ties break on (job, machine) so the pair list —
   and hence the policy and its cache keys — is deterministic. *)
let policy inst =
  let n = Instance.n inst and m = Instance.m inst in
  let pairs = ref [] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let p = Instance.prob inst ~machine:i ~job:j in
      if p > 0. then pairs := (p, j, i) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  Array.sort
    (fun (p1, j1, i1) (p2, j2, i2) ->
      if p1 <> p2 then compare p2 p1
      else if j1 <> j2 then compare j1 j2
      else compare i1 i2)
    pairs;
  Policy.of_greedy_pairs "suu-lzf" ~n ~m
    ~probs:(Array.map (fun (p, _, _) -> p) pairs)
    ~machines:(Array.map (fun (_, _, i) -> i) pairs)
    ~jobs:(Array.map (fun (_, j, _) -> j) pairs)
