(** Largest-Z-ratio-First — a cheap index policy for unreliable machines.

    LZF (arXiv:1910.05702) schedules unreliable jobs by the index
    [z_ij = p_ij / (1 - p_ij)], the odds that the attempt succeeds; for
    unit weights the Z-ratio order is the success-probability order, and
    the policy is 0.8531-approximate for independent jobs on parallel
    machines. Here it is exposed as a greedy pair-scan regimen
    ({!Suu_core.Policy.of_greedy_pairs}) over all positive-probability
    (machine, job) pairs in descending Z-ratio order: every step, each
    machine takes the highest-index eligible job it can still help
    (subject to the scan's unit mass cap), so the policy is adaptive,
    costs nothing to construct, runs on the vectorized trial-lane kernel
    unchanged, and — because eligibility is its only input — is
    automatically an online policy under release dates and churn. *)

val z_ratio : float -> float
(** [p /. (1 -. p)]; [infinity] when [p >= 1]. *)

val policy : Suu_core.Instance.t -> Suu_core.Policy.t
(** The LZF pair-scan policy (named ["suu-lzf"], structure
    {!Suu_core.Policy.Greedy_pairs}). Works on every DAG class. *)
