module Instance = Suu_core.Instance
module Oblivious = Suu_core.Oblivious

type outcome = {
  core : Oblivious.t;
  rounds : int;
  deficient : bool array;
  deficient_count : int;
}

(* The round loop shared by Algorithm 2 (SUU-I-OBL) and the improved
   phase ladder: repeatedly ask MSM-E-ALG for a length-[t] allocation
   over the still-deficient jobs, append the packed piece, and retire
   every job whose round mass reached the target. The 1e-12 slack
   absorbs the float accumulation error of the allocator's own ledger
   (which retires headroom with the same comparison). *)
let accumulate inst ~jobs ~t ~mass_target ~max_rounds ~early_exit =
  let n = Instance.n inst and m = Instance.m inst in
  let deficient = Array.copy jobs in
  let deficient_count =
    ref (Array.fold_left (fun acc j -> if j then acc + 1 else acc) 0 deficient)
  in
  let pieces = ref [] in
  let rounds = ref 0 in
  let stop = ref false in
  while (not !stop) && !deficient_count > 0 && !rounds < max_rounds do
    incr rounds;
    let alloc = Msm_ext.allocate inst ~jobs:deficient ~t in
    pieces := Msm_ext.to_schedule inst alloc :: !pieces;
    let removed = ref 0 in
    for j = 0 to n - 1 do
      if deficient.(j) && alloc.Msm_ext.mass.(j) >= mass_target -. 1e-12
      then begin
        deficient.(j) <- false;
        decr deficient_count;
        incr removed
      end
    done;
    if early_exit && !removed = 0 then stop := true
  done;
  let core =
    List.fold_left
      (fun acc piece -> Oblivious.append piece acc)
      (Oblivious.finite ~m [||])
      !pieces
  in
  {
    core;
    rounds = !rounds;
    deficient;
    deficient_count = !deficient_count;
  }

let all_jobs inst = Array.make (Instance.n inst) true

(* Guess-doubling driver (§3.2): [attempt] is tried at t, 2t, 4t, …
   until it reports success; a guess of O(n / p_min) always succeeds, so
   the cap below is a defensive backstop against broken callers. *)
let doubling_guess inst ~t0 ~attempt =
  let n = Instance.n inst in
  let hard_cap =
    let pmin = Instance.p_min inst in
    Float.to_int (Float.min 1e9 (16. *. Float.of_int n /. pmin)) + 2
  in
  let rec search t guesses =
    match attempt t with
    | Some result -> (result, t, guesses + 1)
    | None ->
        if t >= hard_cap then
          invalid_arg "Accum.doubling_guess: cap exceeded (unreachable jobs?)"
        else search (2 * t) (guesses + 1)
  in
  search t0 0
