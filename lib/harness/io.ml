module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

let emit put inst =
  let n = Instance.n inst and m = Instance.m inst in
  let edges = Dag.edges (Instance.dag inst) in
  put "suu 1\n";
  put (Printf.sprintf "n %d m %d\n" n m);
  put (Printf.sprintf "edges %d\n" (List.length edges));
  List.iter (fun (u, v) -> put (Printf.sprintf "%d %d\n" u v)) edges;
  put "probs\n";
  for i = 0 to m - 1 do
    let row =
      String.concat " "
        (List.init n (fun j ->
             Printf.sprintf "%.17g" (Instance.prob inst ~machine:i ~job:j)))
    in
    put row;
    put "\n"
  done

let write oc inst = emit (output_string oc) inst

let to_string inst =
  let buf = Buffer.create 1024 in
  emit (Buffer.add_string buf) inst;
  Buffer.contents buf

let digest inst = Digest.to_hex (Digest.string (to_string inst))

let strip_comment line =
  match String.index_opt line '#' with
  | Some k -> String.sub line 0 k
  | None -> line

let tokens_of_lines lines =
  List.concat_map
    (fun line ->
      strip_comment line |> String.split_on_char ' '
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> ""))
    lines

let parse tokens =
  let fail msg = failwith ("Io.read: " ^ msg) in
  let int_of s =
    match int_of_string_opt s with Some v -> v | None -> fail ("bad int " ^ s)
  in
  let float_of s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail ("bad float " ^ s)
  in
  match tokens with
  | "suu" :: "1" :: "n" :: n :: "m" :: m :: "edges" :: ecount :: rest ->
      let n = int_of n and m = int_of m and ecount = int_of ecount in
      (* Validate before any [Array.init] so hostile sizes fail with the
         structured [Failure] every caller already handles. *)
      if n < 0 then fail "bad job count";
      if m < 1 then fail "bad machine count";
      if ecount < 0 then fail "bad edge count";
      let rec take_edges k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | u :: v :: rest -> take_edges (k - 1) ((int_of u, int_of v) :: acc) rest
          | _ -> fail "truncated edge list"
      in
      let edges, rest = take_edges ecount [] rest in
      let rest =
        match rest with
        | "probs" :: rest -> rest
        | _ -> fail "expected 'probs'"
      in
      let floats = Array.of_list (List.map float_of rest) in
      if Array.length floats <> n * m then fail "wrong probability count";
      let p = Array.init m (fun i -> Array.init n (fun j -> floats.((i * n) + j))) in
      (try Instance.create ~p ~dag:(Dag.create ~n edges)
       with
       | Instance.Invalid e -> fail (Instance.error_to_string e)
       | Invalid_argument msg -> fail msg)
  | _ -> fail "bad header"

let of_string s = parse (tokens_of_lines (String.split_on_char '\n' s))

let read ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse (tokens_of_lines (List.rev !lines))

let save path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc inst)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

module Oblivious = Suu_core.Oblivious

let schedule_to_string sched =
  let buf = Buffer.create 1024 in
  let add_steps steps =
    Array.iter
      (fun a ->
        Buffer.add_string buf
          (String.concat " " (Array.to_list (Array.map string_of_int a)));
        Buffer.add_char buf '\n')
      steps
  in
  Buffer.add_string buf "suu-plan 1\n";
  Buffer.add_string buf (Printf.sprintf "m %d\n" sched.Oblivious.m);
  Buffer.add_string buf
    (Printf.sprintf "prefix %d\n" (Array.length sched.Oblivious.prefix));
  add_steps sched.Oblivious.prefix;
  Buffer.add_string buf
    (Printf.sprintf "cycle %d\n" (Array.length sched.Oblivious.cycle));
  add_steps sched.Oblivious.cycle;
  Buffer.contents buf

let schedule_of_string s =
  let fail msg = failwith ("Io.schedule: " ^ msg) in
  let int_of tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail ("bad int " ^ tok)
  in
  let tokens = tokens_of_lines (String.split_on_char '\n' s) in
  match tokens with
  | "suu-plan" :: "1" :: "m" :: m :: "prefix" :: plen :: rest ->
      let m = int_of m and plen = int_of plen in
      if m < 1 then fail "bad machine count";
      if plen < 0 then fail "bad prefix length";
      let take_steps count rest =
        if count < 0 then fail "bad step count";
        let steps = Array.init count (fun _ -> Array.make m (-1)) in
        let rest = ref rest in
        for k = 0 to count - 1 do
          for i = 0 to m - 1 do
            match !rest with
            | tok :: more ->
                steps.(k).(i) <- int_of tok;
                rest := more
            | [] -> fail "truncated step list"
          done
        done;
        (steps, !rest)
      in
      let prefix, rest = take_steps plen rest in
      let cycle, rest =
        match rest with
        | "cycle" :: clen :: rest -> take_steps (int_of clen) rest
        | _ -> fail "expected 'cycle'"
      in
      if rest <> [] then fail "trailing tokens";
      (try Oblivious.create ~m ~cycle prefix
       with Invalid_argument msg -> fail msg)
  | _ -> fail "bad header"

let save_schedule path sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (schedule_to_string sched))

let load_schedule path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_channel buf ic 4096
         done
       with End_of_file -> ());
      schedule_of_string (Buffer.contents buf))
