(** Plain-text serialisation of SUU instances.

    Format (line oriented, [#] starts a comment):
    {v
    suu 1            # magic + version
    n <jobs> m <machines>
    edges <count>
    <u> <v>          # one per edge
    probs            # then m rows of n floats, machine-major
    <p_00> ... <p_0,n-1>
    v} *)

val write : out_channel -> Suu_core.Instance.t -> unit
val read : in_channel -> Suu_core.Instance.t

val save : string -> Suu_core.Instance.t -> unit
(** Write to a file path. *)

val load : string -> Suu_core.Instance.t
(** Read from a file path.
    @raise Failure on malformed input. *)

val to_string : Suu_core.Instance.t -> string
val of_string : string -> Suu_core.Instance.t

val digest : Suu_core.Instance.t -> string
(** Hex content digest of the canonical serialisation ([to_string]) —
    equal instances give equal digests regardless of how they were built.
    Used by the serving layer ({!Suu_service}) as the instance part of
    result-cache keys. *)

(** {1 Oblivious schedule files}

    Computed plans can be exported and replayed later (the whole point of
    oblivious schedules is that they are decided in advance). Format:
    {v
    suu-plan 1
    m <machines>
    prefix <steps>
    <one line per step: m job ids, -1 for idle>
    cycle <steps>
    <one line per step>
    v} *)

val schedule_to_string : Suu_core.Oblivious.t -> string
val schedule_of_string : string -> Suu_core.Oblivious.t
val save_schedule : string -> Suu_core.Oblivious.t -> unit
val load_schedule : string -> Suu_core.Oblivious.t
(** @raise Failure on malformed input. *)
