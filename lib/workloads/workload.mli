(** Workload generators modelled on the paper's motivating applications
    (§1): grid computing (unreliable, geographically distributed machines
    executing a dag of sub-tasks) and project management (workers of
    varying skill assigned to dependent jobs).

    Every generator is deterministic in the supplied RNG. *)

type t = {
  name : string;
  description : string;
  instance : Suu_core.Instance.t;
}

(** {1 Grid computing} *)

val grid_batch : Suu_prob.Rng.t -> n:int -> m:int -> t
(** Independent jobs on a heterogeneous grid: one third of the machines are
    reliable ([p ∈ \[0.6, 0.95\]]), one third flaky ([\[0.05, 0.35\]]), one
    third specialised (reliable on a random ~25% of the jobs, near-useless
    elsewhere). *)

val grid_workflow : Suu_prob.Rng.t -> n:int -> m:int -> stages:int -> t
(** Pipelined grid computation: [stages] disjoint chains of roughly equal
    length (a batch of independent multi-stage workflows), heterogeneous
    machines as in [grid_batch]. *)

val grid_divide : Suu_prob.Rng.t -> n:int -> m:int -> t
(** Divide-and-conquer task spawning: a random out-tree — a task must
    finish before the sub-tasks it spawns can run. *)

val grid_aggregate : Suu_prob.Rng.t -> n:int -> m:int -> t
(** Distributed aggregation: a random in-tree — partial results must all
    arrive before their combiner runs. *)

(** {1 Project management} *)

val project : Suu_prob.Rng.t -> n:int -> m:int -> t
(** Workers × dependent tasks: each job has a type (design, implement,
    test, document, coordinate), each worker a skill level per type
    ([p_ij] = skill of worker [i] for the type of job [j], jittered); the
    dependency graph is a random polytree forest (work-breakdown structures
    with both fan-out and join dependencies). *)

(** {1 Synthetic families for controlled sweeps} *)

val uniform :
  Suu_prob.Rng.t -> n:int -> m:int -> lo:float -> hi:float ->
  dag:Suu_dag.Dag.t -> t
(** All [p_ij] i.i.d. uniform in [\[lo, hi\]]. *)

val specialists :
  Suu_prob.Rng.t -> n:int -> m:int -> capable:int -> lo:float -> hi:float ->
  dag:Suu_dag.Dag.t -> t
(** Each job is runnable by exactly [capable] random machines (with
    [p ∈ \[lo, hi\]]); everyone else has [p = 0]. Exercises the sparse /
    bucketed paths of the rounding. *)

val uunifast :
  Suu_prob.Rng.t -> n:int -> m:int -> total_util:float ->
  dag:Suu_dag.Dag.t -> t
(** Utilization-calibrated instance: the classic UUniFast split (Bini &
    Buttazzo, discard variant — uniform over the simplex slice with
    every share ≤ 1) divides [total_util ∈ (0, n]] into [n] per-job
    shares; a job's share is its per-step completion rate on a
    full-speed machine, scaled by per-machine speed factors drawn
    uniformly from [\[0.5, 1\]] and clamped to [\[0.02, 1\]]. Sweeping
    [total_util] sweeps system load at fixed [n], the standard
    real-time-systems evaluation axis. *)

val adversarial_spread : n:int -> m:int -> t
(** Deterministic stress case for the bucketing: job [j]'s probabilities
    span many powers of two across machines ([p_ij = 2^{-(1 + (i+j) mod
    ⌊log₂ 8m⌋)}]), independent jobs. *)

val arrivals : Suu_prob.Rng.t -> n:int -> mean_gap:float -> int array
(** Release dates for online executions (Engine's [?releases]): job 0
    arrives at step 0 and consecutive jobs are separated by independent
    geometric gaps with the given mean ([mean_gap > 0]; a mean gap below
    1 still yields integer gaps ≥ 1 with high probability mass at 1).
    Jobs arrive in index order, so pair with DAGs whose edges point from
    lower to higher indices (all our generators) to keep releases
    consistent with precedence. *)

(** {1 Dynamic environments} *)

type dyn = {
  workload : t;
  releases : int array;  (** online release steps, one per job *)
  churn : Suu_dyn.Churn.t;  (** machine up/down timeline *)
}
(** A workload paired with the dynamic environment to execute it in:
    feed [releases] and [churn] to the engine's [?releases] /
    [?availability] seams. *)

val churned :
  Suu_prob.Rng.t -> ?mean_gap:float -> t -> Suu_dyn.Churn.params -> dyn
(** [churned rng ?mean_gap w params] pairs workload [w] with geometric
    online {!arrivals} ([mean_gap] defaults to 2 steps) and the
    deterministic churn timeline {!Suu_dyn.Churn.generate}d from
    [params] for [w]'s machine count. Deterministic in [rng] and
    [params]. *)

val figure1 : unit -> t
(** A 3-job, 2-machine instance in the spirit of the paper's Figure 1
    illustration (3 independent jobs, transition probabilities of the
    regimen Markov chain in the 0.1–0.3 range). Used by EXP-H to print the
    Markov chain / execution tree exhibits. *)
