module Rng = Suu_prob.Rng
module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag
module Gen = Suu_dag.Gen

type t = {
  name : string;
  description : string;
  instance : Instance.t;
}

(* Heterogeneous grid machines: reliable / flaky / specialised thirds. *)
let grid_probs rng ~n ~m =
  let p = Array.make_matrix m n 0. in
  for i = 0 to m - 1 do
    match i mod 3 with
    | 0 ->
        for j = 0 to n - 1 do
          p.(i).(j) <- Rng.uniform rng 0.6 0.95
        done
    | 1 ->
        for j = 0 to n - 1 do
          p.(i).(j) <- Rng.uniform rng 0.05 0.35
        done
    | _ ->
        for j = 0 to n - 1 do
          p.(i).(j) <-
            (if Rng.float rng < 0.25 then Rng.uniform rng 0.7 0.95
             else Rng.uniform rng 0.01 0.05)
        done
  done;
  (* Guarantee capability: give each job a floor on its best machine. *)
  for j = 0 to n - 1 do
    let best = ref 0. in
    for i = 0 to m - 1 do
      best := Float.max !best p.(i).(j)
    done;
    if !best < 0.05 then p.(Rng.int rng m).(j) <- Rng.uniform rng 0.5 0.9
  done;
  p

let grid_batch rng ~n ~m =
  let p = grid_probs rng ~n ~m in
  {
    name = "grid-batch";
    description =
      Printf.sprintf
        "%d independent jobs on a heterogeneous %d-machine grid" n m;
    instance = Instance.independent ~p;
  }

let grid_workflow rng ~n ~m ~stages =
  let p = grid_probs rng ~n ~m in
  let dag = Gen.uniform_chains ~n ~chains:(max 1 (n / max 1 stages)) in
  {
    name = "grid-workflow";
    description =
      Printf.sprintf
        "%d-stage pipelined workflows (%d jobs) on a %d-machine grid" stages n
        m;
    instance = Instance.create ~p ~dag;
  }

let grid_divide rng ~n ~m =
  let p = grid_probs rng ~n ~m in
  let dag = Gen.out_forest rng ~n ~trees:(max 1 (n / 16)) in
  {
    name = "grid-divide";
    description =
      Printf.sprintf
        "divide-and-conquer out-trees (%d jobs) on a %d-machine grid" n m;
    instance = Instance.create ~p ~dag;
  }

let grid_aggregate rng ~n ~m =
  let p = grid_probs rng ~n ~m in
  let dag = Gen.in_forest rng ~n ~trees:(max 1 (n / 16)) in
  {
    name = "grid-aggregate";
    description =
      Printf.sprintf "aggregation in-trees (%d jobs) on a %d-machine grid" n m;
    instance = Instance.create ~p ~dag;
  }

let job_types = [| "design"; "implement"; "test"; "document"; "coordinate" |]

let project rng ~n ~m =
  let ntypes = Array.length job_types in
  let job_type = Array.init n (fun _ -> Rng.int rng ntypes) in
  (* Worker skill per type: a few strong skills each, mediocre otherwise. *)
  let skill =
    Array.init m (fun _ ->
        Array.init ntypes (fun _ ->
            if Rng.float rng < 0.4 then Rng.uniform rng 0.5 0.9
            else Rng.uniform rng 0.05 0.3))
  in
  let p =
    Array.init m (fun i ->
        Array.init n (fun j ->
            let base = skill.(i).(job_type.(j)) in
            Float.max 0.01 (Float.min 0.99 (base +. Rng.uniform rng (-0.05) 0.05))))
  in
  let dag = Gen.polytree_forest rng ~n ~trees:(max 1 (n / 12)) in
  {
    name = "project";
    description =
      Printf.sprintf
        "project of %d typed tasks, %d workers with per-type skills, \
         work-breakdown forest"
        n m;
    instance = Instance.create ~p ~dag;
  }

let uniform rng ~n ~m ~lo ~hi ~dag =
  if Dag.n dag <> n then invalid_arg "Workload.uniform: dag size mismatch";
  let p = Array.init m (fun _ -> Array.init n (fun _ -> Rng.uniform rng lo hi)) in
  {
    name = "uniform";
    description =
      Printf.sprintf "uniform p in [%.2f, %.2f], n=%d m=%d" lo hi n m;
    instance = Instance.create ~p ~dag;
  }

let specialists rng ~n ~m ~capable ~lo ~hi ~dag =
  if Dag.n dag <> n then invalid_arg "Workload.specialists: dag size mismatch";
  if capable < 1 || capable > m then
    invalid_arg "Workload.specialists: capable must be in [1, m]";
  let p = Array.make_matrix m n 0. in
  for j = 0 to n - 1 do
    let machines = Rng.permutation rng m in
    for k = 0 to capable - 1 do
      p.(machines.(k)).(j) <- Rng.uniform rng lo hi
    done
  done;
  {
    name = "specialists";
    description =
      Printf.sprintf "each job runnable by %d of %d machines, n=%d" capable m n;
    instance = Instance.create ~p ~dag;
  }

let adversarial_spread ~n ~m =
  let buckets =
    max 2
      (Float.to_int
         (Float.ceil (Float.log (8. *. Float.of_int m) /. Float.log 2.)))
  in
  let p =
    Array.init m (fun i ->
        Array.init n (fun j -> Float.pow 2. (-.Float.of_int (1 + ((i + j) mod buckets)))))
  in
  {
    name = "adversarial-spread";
    description =
      Printf.sprintf
        "probabilities spread over %d powers of two (bucketing stress), n=%d \
         m=%d"
        buckets n m;
    instance = Instance.independent ~p;
  }

(* UUniFast (Bini & Buttazzo), discard variant: split [total_util] into
   [n] shares by the order-statistics recurrence, resampling until every
   share is <= 1 so the split is uniform over the valid simplex slice. *)
let uunifast_split rng ~n ~total_util =
  let u = Array.make n 0. in
  let rec draw () =
    let sum = ref total_util in
    for k = 0 to n - 2 do
      let next =
        !sum *. (Rng.float rng ** (1. /. float_of_int (n - 1 - k)))
      in
      u.(k) <- !sum -. next;
      sum := next
    done;
    u.(n - 1) <- !sum;
    if Array.exists (fun x -> x > 1.) u then draw ()
  in
  draw ();
  u

let uunifast rng ~n ~m ~total_util ~dag =
  if Dag.n dag <> n then invalid_arg "Workload.uunifast: dag size mismatch";
  if total_util <= 0. || total_util > float_of_int n then
    invalid_arg "Workload.uunifast: total_util must be in (0, n]";
  let u = uunifast_split rng ~n ~total_util in
  (* Utilization share = per-step completion rate on a full-speed
     machine; heterogeneous speed factors scale it down per machine.
     Clamped away from 0 so every horizon stays bounded. *)
  let speed = Array.init m (fun _ -> Rng.uniform rng 0.5 1.) in
  let p =
    Array.init m (fun i ->
        Array.init n (fun j ->
            Float.max 0.02 (Float.min 1. (u.(j) *. speed.(i)))))
  in
  {
    name = "uunifast";
    description =
      Printf.sprintf
        "UUniFast utilization split (total %.2f) over %d jobs, %d machines \
         with speed factors"
        total_util n m;
    instance = Instance.create ~p ~dag;
  }

let arrivals rng ~n ~mean_gap =
  if mean_gap <= 0. then invalid_arg "Workload.arrivals: mean_gap must be > 0";
  let p = Float.min 1. (1. /. mean_gap) in
  let releases = Array.make n 0 in
  for j = 1 to n - 1 do
    releases.(j) <- releases.(j - 1) + Rng.geometric rng p
  done;
  releases

type dyn = {
  workload : t;
  releases : int array;
  churn : Suu_dyn.Churn.t;
}

let churned rng ?(mean_gap = 2.) w params =
  let n = Instance.n w.instance and m = Instance.m w.instance in
  {
    workload =
      {
        w with
        description =
          Printf.sprintf "%s; online arrivals (mean gap %g) under churn %s"
            w.description mean_gap
            (Suu_dyn.Churn.spec_of_params params);
      };
    releases = arrivals rng ~n ~mean_gap;
    churn = Suu_dyn.Churn.generate ~m params;
  }

let figure1 () =
  let p = [| [| 0.3; 0.1; 0.1 |]; [| 0.1; 0.3; 0.2 |] |] in
  {
    name = "figure1";
    description =
      "3 independent jobs, 2 machines - the paper's Figure 1 illustration";
    instance = Instance.independent ~p;
  }
