(** Machine churn timelines — the dynamic-environment model.

    A churn timeline says, for every (machine, step), whether the machine
    is up. The representation is a finite set of down-intervals per
    machine plus an optional permanent-death step, so every timeline
    {e settles}: from {!settle} onwards each machine is either up forever
    or down forever. That finiteness is what makes the model compatible
    with the engine's prefix+cycle schedules — {!mask} folds a timeline
    into an oblivious schedule by idling down machines, and the masked
    schedule is again a finite prefix plus a cycle.

    Execution semantics (the [?availability] seam of {!Suu_sim.Engine}
    and {!Suu_sim.Lanes}): a machine that is down at step [t] contributes
    no completion mass that step — its Bernoulli draw is suppressed
    entirely, consuming no randomness, exactly as if the schedule had
    idled it. Policies are churn-oblivious: they still hand out
    assignments to down machines, the environment just wastes them, which
    is the adversarial model of dynamic machine loss. *)

type t
(** An immutable timeline over a fixed machine count. *)

type error =
  | Bad_machine_count of { got : int }
  | Bad_machine of { machine : int; m : int }
  | Bad_interval of { machine : int; start : int; stop : int }
  | Bad_dead_from of { machine : int; value : int }

exception Invalid of error

val error_to_string : error -> string

val create :
  m:int -> ?dead:(int * int) list -> (int * int * int) list -> t
(** [create ~m ?dead down] builds a timeline for [m] machines from
    [down = [(machine, start, stop); ...]] intervals (down during
    [start <= step < stop]) and [dead = [(machine, from); ...]]
    permanent-loss steps. Overlapping or adjacent intervals of one
    machine are merged; intervals at or past the machine's death step
    are absorbed by it. @raise Invalid on a non-positive machine count,
    out-of-range machine, negative or empty interval, or negative death
    step. *)

val none : m:int -> t
(** The all-up timeline. *)

val m : t -> int
val is_none : t -> bool
(** No downtime anywhere (every machine up at every step). *)

val available : t -> machine:int -> step:int -> bool
(** Whether the machine is up at the (0-based) step. *)

val settle : t -> int
(** The first step from which availability is constant: every finite
    down-interval has ended and every permanent death has happened.
    [0] for {!none}. *)

val dead : t -> int -> bool
(** Whether the machine is permanently lost (down forever after
    {!settle}). *)

val down_steps : t -> upto:int -> int
(** Total machine-steps of downtime over steps [0 <= step < upto] — a
    severity measure for benchmarks and reports. *)

val union : t -> t -> t
(** Pointwise-more-churned combination: down wherever either argument is
    down. The canonical way to build nested timelines (for any [a], [b]:
    [union a b] subsumes both). @raise Invalid on a machine-count
    mismatch. *)

val mask : t -> Suu_core.Oblivious.t -> Suu_core.Oblivious.t
(** [mask t sched] is the {e effective} schedule under churn: the
    assignment of step [s] with every machine that is down at [s] idled.
    The prefix is extended (by whole cycle periods) to cover {!settle},
    and the new cycle idles permanently-dead machines, so the result is
    a faithful finite representation of the infinite masked schedule.
    Running the masked schedule on the unchurned engine is step-for-step
    (and draw-for-draw) identical to running [sched] under the
    [?availability] seam. @raise Invalid on machine-count mismatch. *)

(** {2 Seeded generation} *)

type params = {
  seed : int;  (** derives every per-machine event stream *)
  rate : float;  (** per-step crash probability of an up machine *)
  repair : int;  (** steps a transient crash keeps the machine down *)
  perm : float;  (** probability a crash is a permanent loss *)
  steps : int;  (** generation horizon: crashes occur at steps < steps *)
}

val default_params : params
(** [seed=1, rate=0.05, repair=8, perm=0., steps=256]. *)

val generate : m:int -> params -> t
(** Deterministic seeded timeline: machine [i]'s events are drawn from a
    generator derived from [(params.seed, i)] alone, so the timeline is
    a pure function of [(m, params)] — the property the service relies
    on to regenerate a request's timeline from its spec string.
    @raise Invalid_argument when [rate] or [perm] is outside [0,1],
    [repair < 1] or [steps < 0]. *)

val spec_of_params : params -> string
(** Canonical spec string
    ["seed=S,rate=R,repair=K,perm=Q,steps=N"] — the wire and cache-key
    form. [params_of_spec (spec_of_params p) = Ok p]. *)

val params_of_spec : string -> (params, string) result
(** Parse a spec string: comma-separated [key=value] fields in any
    order, each key at most once, unknown keys rejected. Omitted fields
    take their {!default_params} value. *)
