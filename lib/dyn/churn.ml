module Oblivious = Suu_core.Oblivious
module Assignment = Suu_core.Assignment

type t = {
  m : int;
  down : (int * int) array array;  (** per machine, sorted disjoint *)
  dead_from : int array;  (** [max_int] = never *)
}

type error =
  | Bad_machine_count of { got : int }
  | Bad_machine of { machine : int; m : int }
  | Bad_interval of { machine : int; start : int; stop : int }
  | Bad_dead_from of { machine : int; value : int }

exception Invalid of error

let error_to_string = function
  | Bad_machine_count { got } ->
      Printf.sprintf "churn: machine count %d < 1" got
  | Bad_machine { machine; m } ->
      Printf.sprintf "churn: machine %d out of range [0,%d)" machine m
  | Bad_interval { machine; start; stop } ->
      Printf.sprintf "churn: machine %d: bad down-interval [%d,%d)" machine
        start stop
  | Bad_dead_from { machine; value } ->
      Printf.sprintf "churn: machine %d: negative death step %d" machine value

let fail e = raise (Invalid e)

let none ~m =
  if m < 1 then fail (Bad_machine_count { got = m });
  { m; down = Array.make m [||]; dead_from = Array.make m max_int }

let create ~m ?(dead = []) down =
  if m < 1 then fail (Bad_machine_count { got = m });
  let dead_from = Array.make m max_int in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= m then fail (Bad_machine { machine = i; m });
      if v < 0 then fail (Bad_dead_from { machine = i; value = v });
      if v < dead_from.(i) then dead_from.(i) <- v)
    dead;
  let per = Array.make m [] in
  List.iter
    (fun (i, start, stop) ->
      if i < 0 || i >= m then fail (Bad_machine { machine = i; m });
      if start < 0 || stop <= start then
        fail (Bad_interval { machine = i; start; stop });
      (* clip at the death step; intervals past it are absorbed *)
      let stop = min stop dead_from.(i) in
      if start < stop then per.(i) <- (start, stop) :: per.(i))
    down;
  let merge l =
    let a = List.sort compare l in
    let rec go = function
      | (s1, e1) :: (s2, e2) :: rest when s2 <= e1 ->
          go ((s1, max e1 e2) :: rest)
      | iv :: rest -> iv :: go rest
      | [] -> []
    in
    Array.of_list (go a)
  in
  { m; down = Array.map merge per; dead_from }

let m t = t.m

let is_none t =
  Array.for_all (fun ivs -> Array.length ivs = 0) t.down
  && Array.for_all (fun d -> d = max_int) t.dead_from

let available t ~machine ~step =
  machine < 0 || machine >= t.m
  || step < t.dead_from.(machine)
     &&
     let ivs = t.down.(machine) in
     let k = Array.length ivs in
     let up = ref true in
     let i = ref 0 in
     while !up && !i < k && fst ivs.(!i) <= step do
       if step < snd ivs.(!i) then up := false;
       incr i
     done;
     !up

let settle t =
  let s = ref 0 in
  for i = 0 to t.m - 1 do
    Array.iter (fun (_, stop) -> if stop > !s then s := stop) t.down.(i);
    let d = t.dead_from.(i) in
    if d <> max_int && d > !s then s := d
  done;
  !s

let dead t i = t.dead_from.(i) <> max_int

let down_steps t ~upto =
  let total = ref 0 in
  for i = 0 to t.m - 1 do
    Array.iter
      (fun (start, stop) ->
        let stop = min stop (min upto t.dead_from.(i)) in
        if stop > start then total := !total + (stop - start))
      t.down.(i);
    let d = t.dead_from.(i) in
    if d < upto then total := !total + (upto - d)
  done;
  !total

let union a b =
  if a.m <> b.m then fail (Bad_machine { machine = b.m; m = a.m });
  let down = ref [] in
  let dead = ref [] in
  for i = 0 to a.m - 1 do
    Array.iter (fun (s, e) -> down := (i, s, e) :: !down) a.down.(i);
    Array.iter (fun (s, e) -> down := (i, s, e) :: !down) b.down.(i);
    let d = min a.dead_from.(i) b.dead_from.(i) in
    if d <> max_int then dead := (i, d) :: !dead
  done;
  create ~m:a.m ~dead:!dead !down

let mask t sched =
  if Oblivious.(sched.m) <> t.m then
    fail (Bad_machine { machine = Oblivious.(sched.m); m = t.m });
  if is_none t then sched
  else begin
    let plen = Oblivious.prefix_length sched in
    let clen = Oblivious.cycle_length sched in
    let s = settle t in
    (* Extend the prefix to a prefix + k*cycle boundary covering the
       settle point; past it, availability is constant per machine. *)
    let new_plen =
      if s <= plen || clen = 0 then plen
      else plen + ((s - plen + clen - 1) / clen * clen)
    in
    let mask_row step row =
      Array.mapi
        (fun i j ->
          if available t ~machine:i ~step then j else Assignment.idle_job)
        row
    in
    let prefix =
      Array.init new_plen (fun step -> mask_row step (Oblivious.step sched step))
    in
    let cycle =
      Array.map
        (fun row ->
          Array.mapi
            (fun i j -> if dead t i then Assignment.idle_job else j)
            row)
        Oblivious.(sched.cycle)
    in
    Oblivious.create ~m:t.m ~cycle prefix
  end

(* --- seeded generation ------------------------------------------------ *)

type params = {
  seed : int;
  rate : float;
  repair : int;
  perm : float;
  steps : int;
}

let default_params = { seed = 1; rate = 0.05; repair = 8; perm = 0.; steps = 256 }

let check_params p =
  if not (p.rate >= 0. && p.rate <= 1.) then
    invalid_arg "Churn.generate: rate not in [0,1]";
  if not (p.perm >= 0. && p.perm <= 1.) then
    invalid_arg "Churn.generate: perm not in [0,1]";
  if p.repair < 1 then invalid_arg "Churn.generate: repair < 1";
  if p.steps < 0 then invalid_arg "Churn.generate: steps < 0"

let generate ~m p =
  check_params p;
  if m < 1 then fail (Bad_machine_count { got = m });
  if p.rate <= 0. || p.steps = 0 then none ~m
  else begin
    let down = ref [] and dead = ref [] in
    for i = 0 to m - 1 do
      (* Per-machine stream: the timeline of machine [i] depends only on
         (seed, i), so growing [m] never reshuffles existing machines. *)
      let rng = Suu_prob.Rng.create (p.seed lxor ((i + 1) * 0x9E3779B1)) in
      let t = ref 0 and alive = ref true in
      while !alive && !t < p.steps do
        if Suu_prob.Rng.bernoulli rng p.rate then
          if p.perm > 0. && Suu_prob.Rng.bernoulli rng p.perm then begin
            dead := (i, !t) :: !dead;
            alive := false
          end
          else begin
            down := (i, !t, !t + p.repair) :: !down;
            t := !t + p.repair
          end
        else incr t
      done
    done;
    create ~m ~dead:!dead !down
  end

let spec_of_params p =
  Printf.sprintf "seed=%d,rate=%g,repair=%d,perm=%g,steps=%d" p.seed p.rate
    p.repair p.perm p.steps

let params_of_spec s =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ',' (String.trim s) in
  let fields = List.filter (fun f -> String.trim f <> "") fields in
  let parse_int k v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "churn: %s: bad integer %S" k v)
  in
  let parse_float k v =
    match float_of_string_opt (String.trim v) with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "churn: %s: bad number %S" k v)
  in
  let rec go seen acc = function
    | [] -> Ok acc
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> Error (Printf.sprintf "churn: expected key=value, got %S" f)
        | Some eq ->
            let k = String.trim (String.sub f 0 eq) in
            let v = String.sub f (eq + 1) (String.length f - eq - 1) in
            if List.mem k seen then
              Error (Printf.sprintf "churn: duplicate field %S" k)
            else
              let* acc =
                match k with
                | "seed" ->
                    let* i = parse_int k v in
                    Ok { acc with seed = i }
                | "rate" ->
                    let* x = parse_float k v in
                    if x < 0. || x > 1. then
                      Error (Printf.sprintf "churn: rate %g not in [0,1]" x)
                    else Ok { acc with rate = x }
                | "repair" ->
                    let* i = parse_int k v in
                    if i < 1 then Error "churn: repair < 1"
                    else Ok { acc with repair = i }
                | "perm" ->
                    let* x = parse_float k v in
                    if x < 0. || x > 1. then
                      Error (Printf.sprintf "churn: perm %g not in [0,1]" x)
                    else Ok { acc with perm = x }
                | "steps" ->
                    let* i = parse_int k v in
                    if i < 0 then Error "churn: steps < 0"
                    else Ok { acc with steps = i }
                | _ -> Error (Printf.sprintf "churn: unknown field %S" k)
              in
              go (k :: seen) acc rest)
  in
  go [] default_params fields
