(* splitmix64's finalizer: full avalanche, so consecutive virtual-node
   labels land uniformly on the circle. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* FNV-1a over the bytes, then a finalizer pass; clamped non-negative so
   points order as plain ints. *)
let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (mix64 !h) land max_int

type t = { points : (int * int) array }

let create ?(replicas = 64) ids =
  if ids = [] then invalid_arg "Ring.create: no shards";
  if replicas < 1 then invalid_arg "Ring.create: replicas < 1";
  let points =
    List.concat_map
      (fun s ->
        List.init replicas (fun r ->
            (hash_string (Printf.sprintf "shard:%d:%d" s r), s)))
      ids
    |> Array.of_list
  in
  Array.sort compare points;
  { points }

(* Index of the first point at or clockwise-after [h] (wrapping). *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t ~live key =
  let n = Array.length t.points in
  let start = successor t (hash_string key) in
  let rec scan i steps =
    if steps = n then None
    else
      let shard = snd t.points.(i) in
      if live shard then Some shard else scan ((i + 1) mod n) (steps + 1)
  in
  scan start 0
