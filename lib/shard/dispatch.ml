let auto_chunk ~trials ~shards =
  if trials < 1 then invalid_arg "Dispatch.auto_chunk: trials < 1";
  if shards < 1 then invalid_arg "Dispatch.auto_chunk: shards < 1";
  (* Four chunks per shard: enough slack that a slow shard sheds work to
     the others through the job queue, without per-chunk overhead
     dominating. Ceiling division so the chunk count never exceeds
     4 * shards. *)
  max 1 ((trials + (4 * shards) - 1) / (4 * shards))

let plan ~trials ~chunk =
  if trials < 1 then invalid_arg "Dispatch.plan: trials < 1";
  if chunk < 1 then invalid_arg "Dispatch.plan: chunk < 1";
  let rec go lo acc =
    if lo >= trials then List.rev acc
    else
      let hi = min trials (lo + chunk) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

(* Same shape as the service's transient-retry backoff: capped
   exponential with deterministic jitter from the fault spec's seed. *)
let backoff_cap_ms = 50.

let backoff_s ~base_ms ~fault ~key ~attempt =
  let raw = base_ms *. (2. ** float_of_int attempt) in
  let jitter =
    Suu_service.Fault.jitter fault
      ~key:(Suu_service.Fault.attempt_key ~seq:key ~attempt)
  in
  Float.min raw backoff_cap_ms *. (0.5 +. (0.5 *. jitter)) /. 1000.
