(** Shard lifecycle owner: detection, fencing, respawn.

    The paper's machines fail permanently and its scheduler can only
    route around them; one level up, the serving layer can also
    {e replace} the machine. The supervisor owns that loop:

    {v
      spawn -> Healthy -> (missed beats) Suspect -> Dead
                  ^                                  |
                  |      (budget + backoff)          v
               Rejoined  <-----------------     Respawning
    v}

    {b Epoch fencing.} Every slot carries an epoch (its death count).
    Work is dispatched tagged with the epoch it was checked out under;
    a death bumps the epoch, so late answers from the presumed-dead
    worker — a {e zombie} — fail the epoch check and are discarded,
    keeping responses exactly-once even though its in-flight work was
    re-dispatched to survivors.

    {b Locking.} One internal lock, ordered under the coordinator's
    lock and above client locks. No user code runs under it: queries
    return action lists (who to beat, who to fence, who to respawn)
    that the caller executes lock-free. {!respawn} runs the spawn
    closure with no lock held at all. *)

type state = Healthy | Suspect | Dead | Respawning | Rejoined

val state_name : state -> string
val routable_state : state -> bool
(** [Healthy], [Suspect] and [Rejoined] are routable: suspicion is a
    hunch, not a verdict, and a rejoined shard serves immediately. *)

type config = {
  shards : int;
  respawn_budget : int;
      (** respawn attempts per shard; [0] preserves the degrade-only
          behaviour of a fleet that only shrinks *)
  respawn_backoff_ms : float;
      (** base of the capped-exponential respawn delay (cap 500 ms) *)
  suspect_after : int;  (** consecutive missed beats before [Suspect] *)
  dead_after : int;  (** consecutive missed beats before [Dead] *)
  fault : Suu_service.Fault.spec;
      (** jitter seeding — respawn delays are a pure function of
          (seed, shard, attempt), so chaos runs replay identically *)
}

type t

val create : config -> spawn:(int -> Client.t) -> t
(** Spawns all [cfg.shards] initial clients via [spawn] (which is
    retained for respawn). A raise from an initial spawn propagates. *)

val shards : t -> int

(** {2 Routing queries} *)

val checkout : t -> int -> (Client.t * int) option
(** The slot's client and current epoch iff routable — the atomic
    read every dispatch goes through; the epoch tags the work. *)

val routable : t -> int -> bool
val routable_indices : t -> int list

val can_recover : t -> bool
(** Some shard is serving, respawning, or still within its respawn
    budget. While true, queued work may wait for recovery; once false
    the fleet is permanently empty and waiting cannot help. *)

val healing : t -> bool
(** A respawn is in flight or scheduled. Shutdown waits on this so the
    fleet returns to full strength (bounded: finite budgets, capped
    backoff) before the final report. *)

(** {2 Death and fencing} *)

val note_death :
  t -> int -> epoch:int -> now:float -> [ `Fenced of Client.t | `Stale ]
(** Report that the shard observed at [epoch] is dead. If the slot is
    still at that epoch and routable: transition to [Dead], bump the
    epoch, schedule the respawn clock (if budget remains), park the old
    client on the zombie list, and return it — the caller kills it and
    re-dispatches its in-flight work. [`Stale] means someone else
    already fenced this epoch (or the slot is already down): do
    nothing, the work was already rescued. *)

(** {2 Heartbeats} *)

val begin_beats : t -> (int * int) list * (int * int) list
(** One beat tick: [(beat, expired)]. [beat] is the [(index, epoch)]
    list to ping now — the epoch rides along so the pong is
    fence-checked. [expired] lists slots whose consecutive misses
    reached [dead_after]; route them through the shard-loss path
    ({!note_death}). Crossing [suspect_after] flips the label to
    [Suspect] internally (counted, still routable). *)

val pong : t -> int -> epoch:int -> unit
(** A beat answered. Ignored if the epoch no longer matches (zombie
    pong). Clears misses; [Suspect]/[Rejoined] settle to [Healthy]. *)

(** {2 Respawn} *)

val due_respawns : t -> now:float -> int list
(** Dead slots whose backoff clock has expired and whose budget
    remains; each is atomically marked [Respawning] (unroutable, not
    due again) and returned for the caller to {!respawn}. *)

val respawn : t -> int -> now:float -> bool
(** Run the spawn closure for a [Respawning] slot — with no lock held;
    spawning forks processes and dials sockets. On success the slot
    becomes [Rejoined] at its already-bumped epoch and is immediately
    routable. On an I/O-class spawn failure ([Unix_error] / [Sys_error]
    / [Failure]; anything else propagates) the attempt is consumed and
    the slot returns to [Dead] with the backoff re-armed. *)

(** {2 Introspection} *)

val respawns_total : t -> int
val suspects_total : t -> int

val snapshot : t -> (state * int * int) array
(** Per slot: (state, epoch, respawn attempts consumed). *)

val live_count : t -> int

val clients : t -> Client.t list
(** Current clients (one per slot) — for shutdown close/join. *)

val drain_zombies : t -> Client.t list
(** Fenced-out clients accumulated since the last drain. Their reader
    domains still need {!Client.join}; shutdown drains and joins. *)
