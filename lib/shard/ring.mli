(** Consistent-hash ring over shard ids.

    Each shard owns [replicas] virtual nodes — points on a 2^62-point
    circle derived by hashing ["shard:<id>:<replica>"] — and a key
    routes to the shard owning the first virtual node at or clockwise
    after the key's own hash. The properties this buys the coordinator:
    routing is a pure function of [(key, shard set)], so equal cache
    keys always land on the same shard (per-shard LRU caches stay hot);
    and when a shard dies, only the keys it owned move (to each arc's
    clockwise successor) — the other shards' caches are untouched. *)

type t

val create : ?replicas:int -> int list -> t
(** A ring over the given shard ids. [replicas] (default 64) virtual
    nodes per shard keeps the expected load imbalance around
    [1/sqrt(replicas)].
    @raise Invalid_argument on an empty id list or [replicas < 1]. *)

val route : t -> live:(int -> bool) -> string -> int option
(** The shard owning [key], skipping virtual nodes of shards the [live]
    predicate rejects — dead shards' arcs fall to their clockwise
    successors. [None] when no live shard remains.

    [live] is consulted at route time, never cached, which is what
    makes rejoin safe: a respawned shard's virtual nodes were never
    removed from the ring, so the moment the supervisor reports the
    slot routable again its arcs fall back to it — keys return to
    their original owner with no rebuild and no transfer of the keys
    that never moved. Exactly-once answering across the rejoin is the
    epoch fence's job ({!Supervisor}), not the ring's. *)

val hash_string : string -> int
(** The ring's key hash (FNV-1a, splitmix-finalised, non-negative) —
    exposed for tests and for deterministic keyless round-robin. *)
