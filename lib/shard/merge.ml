module Json = Suu_service.Json
module Engine = Suu_sim.Engine
module Stats = Suu_prob.Stats
module Histogram = Suu_obs.Histogram

type part = {
  algo : string;
  lo : int;
  hi : int;
  trials : int;
      (* trials the shard actually executed — [hi - lo] unless a
         ci_target stopped the range early (older shards omit the field;
         it defaults to the full width) *)
  incomplete : int;
  samples : float array;
}

type response =
  | Part of part
  | Whole  (* ok, but not a partial — a forwarded reply, passed through *)
  | Err of { msg : string; reason : string option }
  | Expired of float option  (* status timeout, with its deadline *)
  | Garbled of string

let classify line =
  match Json.of_string line with
  | Error e -> Garbled (Printf.sprintf "unparseable response: %s" e)
  | Ok json -> (
      let str name = Option.bind (Json.member name json) Json.to_str in
      let num name = Option.bind (Json.member name json) Json.to_num in
      let int name = Option.bind (Json.member name json) Json.to_int in
      match str "status" with
      | Some "timeout" -> Expired (num "deadline_ms")
      | Some "error" ->
          Err
            {
              msg = Option.value ~default:"shard error" (str "error");
              reason = str "reason";
            }
      | Some "ok" -> (
          match Option.bind (Json.member "partial" json) Json.to_bool with
          | Some true -> (
              let samples =
                match Json.member "samples" json with
                | Some (Json.List xs) ->
                    let nums = List.filter_map Json.to_num xs in
                    if List.length nums = List.length xs then
                      Some (Array.of_list nums)
                    else None
                | _ -> None
              in
              match (str "algo", int "lo", int "hi", int "incomplete", samples)
              with
              | Some algo, Some lo, Some hi, Some incomplete, Some samples
                when 0 <= lo && lo < hi ->
                  let trials =
                    match int "trials" with
                    | Some t when 0 <= t && t <= hi - lo -> t
                    | Some _ | None -> hi - lo
                  in
                  Part { algo; lo; hi; trials; incomplete; samples }
              | _ -> Garbled "malformed partial response")
          | _ -> Whole)
      | _ -> Garbled "response without a status")

(* merge_ranges recomputes the summary from the concatenated samples;
   the per-part summaries are never read, so a placeholder keeps the
   record total without summarising (possibly empty) part samples. *)
let dummy_stats =
  {
    Stats.count = 0;
    mean = 0.;
    variance = 0.;
    stddev = 0.;
    min = 0.;
    max = 0.;
    sem = 0.;
    ci95 = 0.;
  }

let estimate_of_part p =
  {
    Engine.stats = dummy_stats;
    trials = p.trials;
    incomplete = p.incomplete;
    samples = p.samples;
  }

let merged_fields ~max_steps parts =
  if parts = [] then invalid_arg "Merge.merged_fields: no parts";
  let parts = List.sort (fun a b -> compare a.lo b.lo) parts in
  let e = Engine.merge_ranges ~max_steps (List.map estimate_of_part parts) in
  let p95 =
    if Array.length e.Engine.samples = 0 then 0.
    else Stats.quantile e.Engine.samples 0.95
  in
  [
    ("algo", Json.Str (List.hd parts).algo);
    ("trials", Json.int e.Engine.trials);
    ("mean", Json.Num e.Engine.stats.Stats.mean);
    ("ci95", Json.Num e.Engine.stats.Stats.ci95);
    ("p95", Json.Num p95);
    ("incomplete", Json.int e.Engine.incomplete);
  ]

(* --- raw-stats telemetry ---------------------------------------------- *)

let hist_of_json json =
  let num name = Option.bind (Json.member name json) Json.to_num in
  let int name = Option.bind (Json.member name json) Json.to_int in
  let counts =
    match Json.member "counts" json with
    | Some (Json.List xs) ->
        let pair = function
          | Json.List [ k; c ] -> (
              match (Json.to_int k, Json.to_int c) with
              | Some k, Some c -> Some (k, c)
              | _ -> None)
          | _ -> None
        in
        let pairs = List.filter_map pair xs in
        if List.length pairs = List.length xs then Some pairs else None
    | _ -> None
  in
  match
    (num "lo", num "growth", int "buckets", counts, num "sum", num "min",
     num "max")
  with
  | ( Some layout_lo,
      Some layout_growth,
      Some layout_buckets,
      Some occupied,
      Some total_sum,
      Some observed_min,
      Some observed_max ) -> (
      match
        Histogram.import
          {
            Histogram.layout_lo;
            layout_growth;
            layout_buckets;
            occupied;
            total_sum;
            observed_min;
            observed_max;
          }
      with
      | h -> Some h
      | exception Invalid_argument _ -> None)
  | _ -> None

let counters_of_json = function
  | Json.Obj fields ->
      List.filter_map
        (fun (name, v) ->
          match Json.to_int v with Some n -> Some (name, n) | None -> None)
        fields
  | _ -> []

(* The service counter fields a raw stats response carries, in the
   order the merged exposition reports them. *)
let counter_names =
  [
    "requests"; "ok"; "errors"; "timeouts"; "rejected"; "worker_crashes";
    "restarts"; "retries"; "degraded"; "cache_hits"; "cache_misses";
  ]

type telemetry = {
  shards_reporting : int;
  service : (string * int) list;  (** summed worker service counters *)
  engine : (string * int) list;  (** summed worker engine counters *)
  latency : Histogram.t option;  (** merged worker ok-latency histogram *)
}

let telemetry_of_responses lines =
  let jsons =
    List.filter_map (fun l -> Result.to_option (Json.of_string l)) lines
  in
  let service_snaps =
    List.map
      (fun json ->
        List.filter_map
          (fun name ->
            Option.bind (Json.member name json) Json.to_int
            |> Option.map (fun v -> (name, v)))
          counter_names)
      jsons
  in
  let engine_snaps =
    List.map
      (fun json ->
        match Json.member "engine" json with
        | Some obj -> counters_of_json obj
        | None -> [])
      jsons
  in
  let hists =
    List.filter_map
      (fun json -> Option.bind (Json.member "latency_hist" json) hist_of_json)
      jsons
  in
  {
    shards_reporting = List.length jsons;
    service = Suu_obs.Counters.merge_snapshots service_snaps;
    engine = Suu_obs.Counters.merge_snapshots engine_snaps;
    latency = (match hists with [] -> None | hs -> Some (Histogram.merge hs));
  }
