module Fault = Suu_service.Fault

(* Shard lifecycle owner. The paper schedules jobs on machines that
   fail permanently; the serving layer's workers fail the same way —
   but one level up we can do what the paper's scheduler cannot:
   replace the machine. The supervisor owns that loop:

     spawn -> Healthy -> (missed beats) Suspect -> Dead
                 ^                                   |
                 |   (budget + backoff)              v
              Rejoined  <-------------------   Respawning

   Every transition out of the live states bumps the slot's *epoch*.
   The epoch is the fence: work dispatched to epoch e is only accepted
   back while the slot is still at epoch e, so a zombie — a worker
   presumed dead whose late answers still arrive after its work was
   re-dispatched — cannot smuggle a duplicate or stale response past
   the exactly-once ordering layer.

   Locking: the supervisor has one lock, ordered *under* the
   coordinator's lock and *above* client locks. No callback ever runs
   under it — every query returns action lists (who to beat, who to
   fence, who to respawn) for the caller to execute lock-free. The
   only deliberately slow operation, [respawn]'s process spawn, runs
   with no lock held at all. *)

type state = Healthy | Suspect | Dead | Respawning | Rejoined

let state_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Dead -> "dead"
  | Respawning -> "respawning"
  | Rejoined -> "rejoined"

(* Routable = requests may be dispatched there. Suspicion is a hunch,
   not a verdict: a Suspect shard keeps serving until beats confirm
   death, and a Rejoined shard serves immediately. *)
let routable_state = function
  | Healthy | Suspect | Rejoined -> true
  | Dead | Respawning -> false

type slot = {
  sid : int;
  mutable client : Client.t;
  mutable epoch : int;  (* death count; bumped at fence time *)
  mutable st : state;
  mutable respawns : int;  (* consumed respawn attempts *)
  mutable misses : int;  (* consecutive unanswered heartbeats *)
  mutable hb_outstanding : bool;
  mutable respawn_at : float;  (* wall-clock; meaningful when Dead *)
}

type config = {
  shards : int;
  respawn_budget : int;  (* respawn attempts per shard; 0 = degrade only *)
  respawn_backoff_ms : float;
  suspect_after : int;  (* missed beats before Suspect *)
  dead_after : int;  (* missed beats before Dead *)
  fault : Fault.spec;  (* jitter seeding — keeps chaos runs replayable *)
}

type t = {
  cfg : config;
  spawn : int -> Client.t;
  lock : Mutex.t;
  slots : slot array;
  mutable zombies : Client.t list;
      (* fenced-out clients, kept for reader join at shutdown *)
  mutable respawns_total : int;
  mutable suspects_total : int;
}

let create cfg ~spawn =
  let slots =
    Array.init cfg.shards (fun sid ->
        {
          sid;
          client = spawn sid;
          epoch = 0;
          st = Healthy;
          respawns = 0;
          misses = 0;
          hb_outstanding = false;
          respawn_at = 0.;
        })
  in
  {
    cfg;
    spawn;
    lock = Mutex.create ();
    slots;
    zombies = [];
    respawns_total = 0;
    suspects_total = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let shards t = t.cfg.shards

(* Capped exponential with deterministic jitter, keyed by (shard,
   attempt) so a chaos replay schedules the same delays. *)
let backoff_s cfg ~sid ~attempt =
  let base = cfg.respawn_backoff_ms *. (2. ** float_of_int attempt) in
  let capped = Float.min base 500. in
  let j = Fault.jitter cfg.fault ~key:(0x5A5A + (sid * 131) + attempt) in
  capped *. (0.5 +. j) /. 1000.

(* --- routing queries --------------------------------------------------- *)

let checkout t i =
  with_lock t (fun () ->
      let s = t.slots.(i) in
      if routable_state s.st && Client.alive s.client then
        Some (s.client, s.epoch)
      else None)

let routable t i =
  with_lock t (fun () ->
      let s = t.slots.(i) in
      routable_state s.st && Client.alive s.client)

let routable_indices t =
  with_lock t (fun () ->
      Array.to_list t.slots
      |> List.filter_map (fun s ->
             if routable_state s.st && Client.alive s.client then Some s.sid
             else None))

(* Whether waiting can still help: some shard is serving, or could be
   brought back within its budget. When this turns false the fleet is
   permanently empty and queued work must fail rather than wait. *)
let slot_recoverable cfg s =
  match s.st with
  | Healthy | Suspect | Rejoined -> Client.alive s.client
  | Respawning -> true
  | Dead -> s.respawns < cfg.respawn_budget

let can_recover t =
  with_lock t (fun () ->
      Array.exists (slot_recoverable t.cfg) t.slots)

let healing t =
  with_lock t (fun () ->
      Array.exists
        (fun s ->
          match s.st with
          | Respawning -> true
          | Dead -> s.respawns < t.cfg.respawn_budget
          | Healthy | Suspect | Rejoined -> false)
        t.slots)

(* --- death and fencing ------------------------------------------------- *)

let note_death t i ~epoch ~now =
  with_lock t (fun () ->
      let s = t.slots.(i) in
      if s.epoch <> epoch || not (routable_state s.st) then `Stale
      else begin
        let old = s.client in
        s.st <- Dead;
        s.epoch <- s.epoch + 1;
        s.misses <- 0;
        s.hb_outstanding <- false;
        if s.respawns < t.cfg.respawn_budget then
          s.respawn_at <-
            now +. backoff_s t.cfg ~sid:i ~attempt:s.respawns;
        t.zombies <- old :: t.zombies;
        `Fenced old
      end)

(* --- heartbeats -------------------------------------------------------- *)

(* One beat tick. Returns who to ping now — (index, epoch), the epoch
   riding along so the pong can be fence-checked — and who has missed
   enough consecutive beats to be declared dead; the caller routes the
   latter through its shard-loss path (which calls {!note_death}).
   Suspicion is handled internally: it changes no routing, only the
   state label and a counter. *)
let begin_beats t =
  with_lock t (fun () ->
      let beat = ref [] and expired = ref [] in
      Array.iter
        (fun s ->
          if routable_state s.st && Client.alive s.client then
            if s.hb_outstanding then begin
              s.misses <- s.misses + 1;
              if s.misses >= t.cfg.dead_after then
                expired := (s.sid, s.epoch) :: !expired
              else begin
                (if s.misses >= t.cfg.suspect_after
                    && (s.st = Healthy || s.st = Rejoined) then begin
                   s.st <- Suspect;
                   t.suspects_total <- t.suspects_total + 1
                 end);
                beat := (s.sid, s.epoch) :: !beat
              end
            end
            else begin
              s.hb_outstanding <- true;
              beat := (s.sid, s.epoch) :: !beat
            end)
        t.slots;
      (List.rev !beat, List.rev !expired))

let pong t i ~epoch =
  with_lock t (fun () ->
      let s = t.slots.(i) in
      if s.epoch = epoch && routable_state s.st then begin
        s.hb_outstanding <- false;
        s.misses <- 0;
        if s.st = Suspect || s.st = Rejoined then s.st <- Healthy
      end)

(* --- respawn ----------------------------------------------------------- *)

let due_respawns t ~now =
  with_lock t (fun () ->
      Array.to_list t.slots
      |> List.filter_map (fun s ->
             if
               s.st = Dead
               && s.respawns < t.cfg.respawn_budget
               && now >= s.respawn_at
             then begin
               s.st <- Respawning;
               Some s.sid
             end
             else None))

(* Spawn runs with NO lock held — it forks a process, dials a socket,
   or builds a domain, all slow. The slot is parked in [Respawning]
   meanwhile, which is unroutable and not [due], so nobody races us.
   A failed spawn (I/O-class only; Out_of_memory etc. propagate)
   consumes the attempt and re-arms the backoff clock. *)
let respawn t i ~now =
  match t.spawn i with
  | client ->
      with_lock t (fun () ->
          let s = t.slots.(i) in
          s.client <- client;
          s.st <- Rejoined;
          s.respawns <- s.respawns + 1;
          s.misses <- 0;
          s.hb_outstanding <- false;
          t.respawns_total <- t.respawns_total + 1);
      true
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
      with_lock t (fun () ->
          let s = t.slots.(i) in
          s.respawns <- s.respawns + 1;
          s.st <- Dead;
          if s.respawns < t.cfg.respawn_budget then
            s.respawn_at <-
              now +. backoff_s t.cfg ~sid:i ~attempt:s.respawns);
      false

(* --- introspection ----------------------------------------------------- *)

let respawns_total t = with_lock t (fun () -> t.respawns_total)
let suspects_total t = with_lock t (fun () -> t.suspects_total)

let snapshot t =
  with_lock t (fun () ->
      Array.map (fun s -> (s.st, s.epoch, s.respawns)) t.slots)

let live_count t =
  with_lock t (fun () ->
      Array.fold_left
        (fun n s ->
          if routable_state s.st && Client.alive s.client then n + 1 else n)
        0 t.slots)

let clients t = with_lock t (fun () -> Array.to_list (Array.map (fun s -> s.client) t.slots))

let drain_zombies t =
  with_lock t (fun () ->
      let z = t.zombies in
      t.zombies <- [];
      z)
