module Service = Suu_service.Service
module Request = Suu_service.Request
module Json = Suu_service.Json
module Fault = Suu_service.Fault
module Metrics = Suu_service.Metrics
module Engine = Suu_sim.Engine
module Trace = Suu_obs.Trace
module Prom = Suu_obs.Prom
module Histogram = Suu_obs.Histogram

let now_ms = Suu_service.Clock.now_ms

type config = {
  shards : int;
  replicas : int;
  split_threshold : int;
  chunk_trials : int;
  sub_inflight : int;
  retries : int;
  retry_backoff_ms : float;
  heartbeat_ms : float option;
  suspect_after : int;
  dead_after : int;
  respawn_budget : int;
  respawn_backoff_ms : float;
  default_trials : int;
  default_seed : int;
  default_ci_target : float option;
  fault : Fault.spec;
  tracer : Trace.t;
}

let default_config =
  {
    shards = 2;
    replicas = 64;
    split_threshold = 64;
    chunk_trials = 0;
    sub_inflight = 4;
    retries = 2;
    retry_backoff_ms = 1.;
    heartbeat_ms = Some 100.;
    suspect_after = 1;
    dead_after = 3;
    respawn_budget = 2;
    respawn_backoff_ms = 10.;
    default_trials = 200;
    default_seed = 1;
    default_ci_target = None;
    fault = Fault.none;
    tracer = Trace.disabled;
  }

type report = {
  metrics : Metrics.snapshot;
  shards : int;
  shards_live : int;
  forwards : int;
  splits : int;
  subjobs : int;
  shard_deaths : int;
  heartbeats : int;
  respawns : int;
  suspects : int;
  fenced : int;
}

(* Ordered emission, same discipline as the service's emitter: park
   out-of-order responses, flush in sequence, render lazily so a stats
   response snapshots counters at its stream position. *)
type emitter = {
  elock : Mutex.t;
  parked : (int, unit -> string) Hashtbl.t;
  mutable next_seq : int;
  send_line : string -> unit;
}

let emitter_create send_line =
  { elock = Mutex.create (); parked = Hashtbl.create 16; next_seq = 0; send_line }

let emit_lazy em seq make_line =
  Mutex.lock em.elock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock em.elock)
    (fun () ->
      if seq >= em.next_seq then begin
        Hashtbl.replace em.parked seq make_line;
        let rec flush () =
          match Hashtbl.find_opt em.parked em.next_seq with
          | Some make ->
              Hashtbl.remove em.parked em.next_seq;
              em.send_line (make ());
              em.next_seq <- em.next_seq + 1;
              flush ()
          | None -> ()
        in
        flush ()
      end)

let emit em seq line = emit_lazy em seq (fun () -> line)

(* --- jobs ------------------------------------------------------------- *)

type fwd = {
  fseq : int;
  fid : string option;
  fadmitted : float;
  fline : string;
  fkey : string option;
  mutable fattempts : int;
}

type failure = F_error of string * string option | F_timeout of float option

type split = {
  sseq : int;
  sid : string option;
  sadmitted : float;
  smax_steps : int;
  mutable sremaining : int;
  mutable sparts : Merge.part list;
  mutable sfailure : failure option;
}

type sub = {
  parent : split;
  sub_lo : int;
  sub_hi : int;
  sub_line : string;
  mutable attempts : int;
}

type statjob = {
  tseq : int;
  tid : string option;
  tformat : [ `Json | `Prom | `Raw ];
  mutable waiting : int;
  mutable replies : string list;
}

(* Everything in flight on a shard is registered under a ticket in that
   shard's table. A reply only counts if its ticket is still there
   ("owned"); fencing a shard removes the tickets wholesale and
   re-dispatches the work, after which the zombie's late answers find
   no ticket and are discarded. That is the exactly-once half of
   rejoin-safety: the ring may route to a respawned shard immediately,
   because nothing the previous incarnation still says can be mistaken
   for an answer. *)
type work = W_fwd of fwd | W_sub of sub | W_stat of statjob

type t = {
  cfg : config;
  ring : Ring.t;
  sup : Supervisor.t;
  em : emitter;
  metrics : Metrics.t;
  lock : Mutex.t;
  done_cv : Condition.t;
  mutable outstanding : int;
  mutable dispatches : int;  (* kill-injection key; one per dispatch *)
  mutable rr : int;  (* keyless round-robin cursor *)
  mutable next_ticket : int;
  tickets : (int, work) Hashtbl.t array;  (* per shard: in-flight work *)
  jobs : sub Queue.t;  (* sub-jobs awaiting a shard slot *)
  sub_inflight : int array;
  mutable forwards : int;
  mutable splits : int;
  mutable subjobs : int;
  mutable shard_deaths : int;
  mutable heartbeats : int;
  mutable fenced : int;  (* zombie answers discarded at the fence *)
}

let shard_live t i = Supervisor.routable t.sup i
let live_indices t = Supervisor.routable_indices t.sup

let request_done_locked t =
  t.outstanding <- t.outstanding - 1;
  Condition.broadcast t.done_cv

let request_done t =
  Mutex.lock t.lock;
  request_done_locked t;
  Mutex.unlock t.lock

(* Register work on a shard; returns the ticket. Caller holds [t.lock]. *)
let register_locked t i work =
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  Hashtbl.replace t.tickets.(i) ticket work;
  ticket

(* Claim a reply: true iff the ticket was still owned (and is now
   consumed). A false return means the fence already rescued this work —
   whatever the shard says now is a zombie's word. *)
let claim t i ticket ~answered =
  Mutex.lock t.lock;
  let owned = Hashtbl.mem t.tickets.(i) ticket in
  if owned then Hashtbl.remove t.tickets.(i) ticket
  else if answered then t.fenced <- t.fenced + 1;
  Mutex.unlock t.lock;
  owned

(* --- forwards --------------------------------------------------------- *)

let fwd_fail t fwd ~reason msg =
  Metrics.record_error t.metrics;
  emit t.em fwd.fseq (Request.error ~id:fwd.fid ~reason msg);
  request_done t

let record_forward_outcome t fwd line =
  match Merge.classify line with
  | Merge.Whole | Merge.Part _ ->
      Metrics.record_ok t.metrics ~latency_ms:(now_ms () -. fwd.fadmitted)
  | Merge.Expired _ -> Metrics.record_timeout t.metrics
  | Merge.Err _ | Merge.Garbled _ -> Metrics.record_error t.metrics

(* Mutual recursion: dispatch / reply / retry / shard-loss handling /
   fencing all feed each other. *)
let rec dispatch_forward t fwd =
  let target =
    Mutex.lock t.lock;
    let target =
      match fwd.fkey with
      | Some key -> Ring.route t.ring ~live:(fun i -> shard_live t i) key
      | None -> (
          (* keyless ops (info) spread round-robin over the live set *)
          match live_indices t with
          | [] -> None
          | live ->
              let n = List.length live in
              let pick = List.nth live (t.rr mod n) in
              t.rr <- t.rr + 1;
              Some pick)
    in
    let target =
      match target with
      | None -> None
      | Some i -> (
          match Supervisor.checkout t.sup i with
          | None -> None (* died between route and checkout; re-route *)
          | Some (c, epoch) ->
              let k = t.dispatches in
              t.dispatches <- k + 1;
              let kill = Fault.fires t.cfg.fault Fault.Kill ~key:k in
              let ticket = register_locked t i (W_fwd fwd) in
              Some (i, c, epoch, ticket, kill))
    in
    Mutex.unlock t.lock;
    target
  in
  match target with
  | None ->
      (* No shard routable right now. While recovery is possible the
         request waits for a respawn; once it is not, fail fast. *)
      if Supervisor.can_recover t.sup then begin
        Unix.sleepf 0.002;
        dispatch_forward t fwd
      end
      else fwd_fail t fwd ~reason:"unavailable" "no live shards"
  | Some (i, c, epoch, ticket, kill) ->
      if kill then Client.kill c;
      let submitted =
        Client.submit c fwd.fline (fun resp ->
            on_forward_reply t fwd i epoch ticket resp)
      in
      if not submitted then
        (* Never sent: take the ticket back ourselves — but only if we
           win the claim. A concurrent fence may have reclaimed and
           re-dispatched this work already; retrying on top of that
           would answer the request twice. *)
        if claim t i ticket ~answered:false then begin
          handle_shard_loss t i ~epoch;
          retry_forward t fwd
        end
        else handle_shard_loss t i ~epoch

and on_forward_reply t fwd i epoch ticket = function
  | Some line ->
      if claim t i ticket ~answered:true then begin
        record_forward_outcome t fwd line;
        emit t.em fwd.fseq line;
        request_done t
      end
      (* else: fenced zombie answer — the work was re-dispatched; this
         late line must not reach the emitter a second time *)
  | None ->
      if claim t i ticket ~answered:false then begin
        handle_shard_loss t i ~epoch;
        retry_forward t fwd
      end
      else handle_shard_loss t i ~epoch

and retry_forward t fwd =
  if fwd.fattempts >= t.cfg.retries then
    fwd_fail t fwd ~reason:"shard_lost" "request lost with its shard"
  else begin
    let attempt = fwd.fattempts in
    fwd.fattempts <- attempt + 1;
    Metrics.record_retry t.metrics;
    Unix.sleepf
      (Dispatch.backoff_s ~base_ms:t.cfg.retry_backoff_ms ~fault:t.cfg.fault
         ~key:fwd.fseq ~attempt);
    dispatch_forward t fwd
  end

(* --- splits ----------------------------------------------------------- *)

and set_failure p f = if p.sfailure = None then p.sfailure <- Some f

and finalize_split_locked t p =
  match p.sfailure with
  | Some (F_timeout d) ->
      Metrics.record_timeout t.metrics;
      emit t.em p.sseq
        (Request.timeout ~id:p.sid ~deadline_ms:(Option.value ~default:0. d));
      request_done_locked t
  | Some (F_error (msg, reason)) ->
      Metrics.record_error t.metrics;
      emit t.em p.sseq (Request.error ~id:p.sid ?reason msg);
      request_done_locked t
  | None ->
      let fields =
        Trace.with_span t.cfg.tracer "merge"
          ~attrs:[ ("seq", string_of_int p.sseq) ]
          (fun () ->
            ("cached", Json.Bool false)
            :: Merge.merged_fields ~max_steps:p.smax_steps p.sparts)
      in
      Metrics.record_ok t.metrics ~latency_ms:(now_ms () -. p.sadmitted);
      emit t.em p.sseq (Request.ok ~id:p.sid fields);
      request_done_locked t

and resolve_sub_locked t sub outcome =
  let p = sub.parent in
  (match outcome with
  | `Part part -> p.sparts <- part :: p.sparts
  | `Failure f -> set_failure p f);
  p.sremaining <- p.sremaining - 1;
  if p.sremaining = 0 then finalize_split_locked t p

(* Pick dispatch work while the lock is held; the (blocking) submits
   happen after release. When no shard is routable, queued sub-jobs
   wait as long as a respawn can still bring one back; once recovery is
   impossible they resolve as failures here — that is what guarantees
   [outstanding] always drains and shutdown never hangs. *)
and pump_locked t =
  let least_loaded () =
    List.fold_left
      (fun best i ->
        match best with
        | Some j when t.sub_inflight.(j) <= t.sub_inflight.(i) -> best
        | _ -> Some i)
      None (live_indices t)
  in
  let rec collect acc =
    if Queue.is_empty t.jobs then List.rev acc
    else
      match least_loaded () with
      | Some i when t.sub_inflight.(i) < t.cfg.sub_inflight -> (
          match Supervisor.checkout t.sup i with
          | None -> List.rev acc (* raced a death; next pump retries *)
          | Some (c, epoch) ->
              let sub = Queue.pop t.jobs in
              t.sub_inflight.(i) <- t.sub_inflight.(i) + 1;
              let k = t.dispatches in
              t.dispatches <- k + 1;
              let kill = Fault.fires t.cfg.fault Fault.Kill ~key:k in
              let ticket = register_locked t i (W_sub sub) in
              collect ((i, c, epoch, ticket, sub, kill) :: acc))
      | Some _ -> List.rev acc (* every live shard at its cap *)
      | None ->
          if not (Supervisor.can_recover t.sup) then
            (* permanently empty fleet: fail the whole queue *)
            while not (Queue.is_empty t.jobs) do
              resolve_sub_locked t (Queue.pop t.jobs)
                (`Failure (F_error ("no live shards", Some "unavailable")))
            done;
          List.rev acc
  in
  collect []

and run_actions t acts =
  List.iter
    (fun (i, c, epoch, ticket, sub, kill) ->
      if kill then Client.kill c;
      let submitted =
        Client.submit c sub.sub_line (fun resp ->
            on_sub_reply t sub i epoch ticket resp)
      in
      if not submitted then
        (* Only requeue if we win the claim: a concurrent fence that
           beat us here has already requeued this sub-job (and reset
           the slot's inflight count). *)
        if claim t i ticket ~answered:false then begin
          Mutex.lock t.lock;
          t.sub_inflight.(i) <- max 0 (t.sub_inflight.(i) - 1);
          Queue.push sub t.jobs;
          Mutex.unlock t.lock;
          handle_shard_loss t i ~epoch;
          pump t
        end
        else handle_shard_loss t i ~epoch)
    acts

and pump t =
  Mutex.lock t.lock;
  let acts = pump_locked t in
  Mutex.unlock t.lock;
  run_actions t acts

and on_sub_reply t sub i epoch ticket = function
  | Some line ->
      if claim t i ticket ~answered:true then begin
        let outcome =
          match Merge.classify line with
          | Merge.Part part -> `Part part
          | Merge.Whole ->
              `Failure
                (F_error ("shard answered a sub-job with a non-partial ok", None))
          | Merge.Err { msg; reason } -> `Failure (F_error (msg, reason))
          | Merge.Expired d -> `Failure (F_timeout d)
          | Merge.Garbled msg -> `Failure (F_error (msg, None))
        in
        Mutex.lock t.lock;
        t.sub_inflight.(i) <- max 0 (t.sub_inflight.(i) - 1);
        resolve_sub_locked t sub outcome;
        let acts = pump_locked t in
        Mutex.unlock t.lock;
        run_actions t acts
      end
  | None ->
      if claim t i ticket ~answered:false then begin
        handle_shard_loss t i ~epoch;
        let retrying = sub.attempts < t.cfg.retries in
        if retrying then begin
          let attempt = sub.attempts in
          sub.attempts <- attempt + 1;
          Metrics.record_retry t.metrics;
          Unix.sleepf
            (Dispatch.backoff_s ~base_ms:t.cfg.retry_backoff_ms
               ~fault:t.cfg.fault
               ~key:((sub.parent.sseq * 1_000_003) + sub.sub_lo)
               ~attempt)
        end;
        Mutex.lock t.lock;
        t.sub_inflight.(i) <- max 0 (t.sub_inflight.(i) - 1);
        if retrying then Queue.push sub t.jobs
        else
          resolve_sub_locked t sub
            (`Failure
              (F_error ("sub-job lost with its shard", Some "shard_lost")));
        let acts = pump_locked t in
        Mutex.unlock t.lock;
        run_actions t acts
      end
      else handle_shard_loss t i ~epoch

(* --- fencing ---------------------------------------------------------- *)

(* A shard at [epoch] was observed dead (EOF, failed submit, or missed
   heartbeats). The supervisor decides whether this observation is
   fresh; if so it fences the slot — bumps the epoch, schedules the
   respawn — and hands back the old client. We then kill it (so its
   reader drains), reclaim every ticket it still held and re-dispatch
   that work to survivors, eagerly: jobs re-dispatched here do not wait
   for the zombie's EOF to trickle in. The zombie's own late callbacks
   find their tickets gone and are counted, not processed. *)
and handle_shard_loss t i ~epoch =
  match Supervisor.note_death t.sup i ~epoch ~now:(Unix.gettimeofday ()) with
  | `Stale -> () (* someone already fenced this epoch *)
  | `Fenced old ->
      Mutex.lock t.lock;
      t.shard_deaths <- t.shard_deaths + 1;
      Mutex.unlock t.lock;
      (* Reclaim the tickets BEFORE killing the client: the kill makes
         the zombie's reader drain, and any answer it surfaces while
         dying must already find its ticket gone. (A genuine answer
         that wins the race instead is claimed and emitted — still
         exactly once.) *)
      fence_slot t i;
      Client.kill old

and fence_slot t i =
  Mutex.lock t.lock;
  let orphans = Hashtbl.fold (fun _ w acc -> w :: acc) t.tickets.(i) [] in
  Hashtbl.reset t.tickets.(i);
  t.sub_inflight.(i) <- 0;
  let fwds = ref [] in
  List.iter
    (fun w ->
      match w with
      | W_fwd fwd -> fwds := fwd :: !fwds
      | W_sub sub ->
          if sub.attempts < t.cfg.retries then begin
            sub.attempts <- sub.attempts + 1;
            Metrics.record_retry t.metrics;
            Queue.push sub t.jobs
          end
          else
            resolve_sub_locked t sub
              (`Failure
                (F_error ("sub-job lost with its shard", Some "shard_lost")))
      | W_stat st ->
          st.waiting <- st.waiting - 1;
          if st.waiting = 0 then finalize_stats_locked t st)
    orphans;
  let acts = pump_locked t in
  Mutex.unlock t.lock;
  run_actions t acts;
  List.iter (fun fwd -> retry_forward t fwd) !fwds

(* --- stats ------------------------------------------------------------ *)

and coord_counter_fields t =
  (* racy reads of monotone ints: telemetry precision *)
  [
    ("forwards", Json.int t.forwards);
    ("splits", Json.int t.splits);
    ("subjobs", Json.int t.subjobs);
    ("shard_deaths", Json.int t.shard_deaths);
    ("heartbeats", Json.int t.heartbeats);
    ("respawns", Json.int (Supervisor.respawns_total t.sup));
    ("suspects", Json.int (Supervisor.suspects_total t.sup));
    ("fenced", Json.int t.fenced);
  ]

and coord_stats_fields t telemetry =
  let m = Metrics.snapshot t.metrics in
  let live = List.length (live_indices t) in
  let epochs =
    Supervisor.snapshot t.sup |> Array.to_list
    |> List.map (fun (_, epoch, _) -> Json.int epoch)
  in
  [
    ("shards", Json.int t.cfg.shards);
    ("shards_live", Json.int live);
    ("requests", Json.int m.Metrics.requests);
    ("ok", Json.int m.Metrics.ok);
    ("errors", Json.int m.Metrics.errors);
    ("timeouts", Json.int m.Metrics.timeouts);
    ("retries", Json.int m.Metrics.retries);
  ]
  @ coord_counter_fields t
  @ [
      ("shard_epochs", Json.List epochs);
      ("shard", Json.Obj (List.map (fun (n, v) -> (n, Json.int v)) telemetry.Merge.service));
      ("engine", Json.Obj (List.map (fun (n, v) -> (n, Json.int v)) telemetry.Merge.engine));
    ]

and hist_snapshot_json h =
  let s = Histogram.export h in
  Json.Obj
    [
      ("lo", Json.Num s.Histogram.layout_lo);
      ("growth", Json.Num s.Histogram.layout_growth);
      ("buckets", Json.int s.Histogram.layout_buckets);
      ( "counts",
        Json.List
          (List.map
             (fun (k, c) -> Json.List [ Json.int k; Json.int c ])
             s.Histogram.occupied) );
      ("sum", Json.Num s.Histogram.total_sum);
      ("min", Json.Num s.Histogram.observed_min);
      ("max", Json.Num s.Histogram.observed_max);
    ]

(* One exposition for the whole deployment: the coordinator's own
   request counters under [suu_coord_*], the summed worker service
   counters under [suu_shard_*], the merged worker latency histogram,
   the summed worker engine counters, and the supervision series —
   respawns, suspicion transitions, fenced zombie answers, and a
   per-shard epoch gauge. *)
and prom_exposition t telemetry =
  let m = Metrics.snapshot t.metrics in
  let c name help v = Prom.counter ~name ~help (float_of_int v) in
  let g name help v = Prom.gauge ~name ~help (float_of_int v) in
  let epoch_rows =
    Supervisor.snapshot t.sup |> Array.to_list
    |> List.mapi (fun i (_, epoch, _) ->
           ([ ("shard", string_of_int i) ], float_of_int epoch))
  in
  Prom.render
    ([
       g "suu_shards" "Configured worker shards." t.cfg.shards;
       g "suu_shards_live" "Shards currently believed live."
         (List.length (live_indices t));
       c "suu_coord_requests_total"
         "Requests completed by the coordinator (ok + errors + timeouts)."
         m.Metrics.requests;
       c "suu_coord_requests_ok_total" "Requests answered ok." m.Metrics.ok;
       c "suu_coord_requests_error_total" "Requests answered with an error."
         m.Metrics.errors;
       c "suu_coord_requests_timeout_total"
         "Requests that exceeded their deadline." m.Metrics.timeouts;
       c "suu_coord_retries_total"
         "Re-dispatches of work lost with a shard." m.Metrics.retries;
       c "suu_coord_forwards_total" "Whole requests routed to a shard."
         t.forwards;
       c "suu_coord_splits_total"
         "Monte-Carlo requests split into trial-range sub-jobs." t.splits;
       c "suu_coord_subjobs_total" "Trial-range sub-jobs dispatched."
         t.subjobs;
       c "suu_coord_shard_deaths_total" "Worker shards lost." t.shard_deaths;
       c "suu_coord_heartbeats_total" "Heartbeat pings sent." t.heartbeats;
       c "suu_shard_respawns_total" "Worker shards respawned after loss."
         (Supervisor.respawns_total t.sup);
       c "suu_coord_suspect_transitions_total"
         "Shards escalated to suspect after missed heartbeats."
         (Supervisor.suspects_total t.sup);
       c "suu_coord_fenced_replies_total"
         "Late answers from fenced (killed-epoch) shards, discarded."
         t.fenced;
       Prom.labelled ~name:"suu_shard_epoch"
         ~help:
           "Shard incarnation number (death count); work is fenced to \
            the epoch it was dispatched under."
         ~ty:`Gauge epoch_rows;
     ]
    @ (match m.Metrics.latency_hist with
      | None -> []
      | Some h ->
          [
            Prom.histogram ~name:"suu_coord_request_latency_ms"
              ~help:
                "Coordinator ok-response latency, admission to emission, \
                 milliseconds."
              h;
          ])
    @ List.map
        (fun (name, v) ->
          c
            ("suu_shard_" ^ name ^ "_total")
            "Summed across live worker shards." v)
        telemetry.Merge.service
    @ (match telemetry.Merge.latency with
      | None -> []
      | Some h ->
          [
            Prom.histogram ~name:"suu_shard_request_latency_ms"
              ~help:
                "Worker ok-response latency, merged across live shards, \
                 milliseconds."
              h;
          ])
    @ List.map
        (fun (name, v) ->
          c ("suu_shard_" ^ name) "Summed across live worker shards." v)
        telemetry.Merge.engine)

and finalize_stats_locked t st =
  emit_lazy t.em st.tseq (fun () ->
      let telemetry = Merge.telemetry_of_responses st.replies in
      match st.tformat with
      | `Prom ->
          Request.ok ~id:st.tid
            [ ("prom", Json.Str (prom_exposition t telemetry)) ]
      | `Json -> Request.ok ~id:st.tid (coord_stats_fields t telemetry)
      | `Raw ->
          let hist =
            match telemetry.Merge.latency with
            | None -> []
            | Some h -> [ ("latency_hist", hist_snapshot_json h) ]
          in
          Request.ok ~id:st.tid (coord_stats_fields t telemetry @ hist));
  request_done_locked t

let on_stats_reply t st i epoch ticket = function
  | Some line ->
      if claim t i ticket ~answered:true then begin
        Mutex.lock t.lock;
        st.replies <- line :: st.replies;
        st.waiting <- st.waiting - 1;
        if st.waiting = 0 then finalize_stats_locked t st;
        Mutex.unlock t.lock
      end
  | None ->
      if claim t i ticket ~answered:false then begin
        Mutex.lock t.lock;
        st.waiting <- st.waiting - 1;
        if st.waiting = 0 then finalize_stats_locked t st;
        Mutex.unlock t.lock;
        handle_shard_loss t i ~epoch
      end
      else handle_shard_loss t i ~epoch

let stats_pull_line =
  Json.to_string (Json.Obj [ ("op", Json.Str "stats"); ("format", Json.Str "raw") ])

let admit_stats t seq req format =
  Metrics.record_stats_request t.metrics;
  Mutex.lock t.lock;
  t.outstanding <- t.outstanding + 1;
  let st =
    {
      tseq = seq;
      tid = req.Request.id;
      tformat = format;
      waiting = 0;
      replies = [];
    }
  in
  let targets =
    List.filter_map
      (fun i ->
        match Supervisor.checkout t.sup i with
        | None -> None
        | Some (c, epoch) ->
            st.waiting <- st.waiting + 1;
            let ticket = register_locked t i (W_stat st) in
            Some (i, c, epoch, ticket))
      (live_indices t)
  in
  if targets = [] then finalize_stats_locked t st;
  Mutex.unlock t.lock;
  List.iter
    (fun (i, c, epoch, ticket) ->
      if
        not
          (Client.submit c stats_pull_line (fun r ->
               on_stats_reply t st i epoch ticket r))
      then
        if claim t i ticket ~answered:false then begin
          Mutex.lock t.lock;
          st.waiting <- st.waiting - 1;
          if st.waiting = 0 then finalize_stats_locked t st;
          Mutex.unlock t.lock;
          handle_shard_loss t i ~epoch
        end
        else handle_shard_loss t i ~epoch)
    targets

(* --- admission -------------------------------------------------------- *)

let admit_forward t seq req line =
  Mutex.lock t.lock;
  t.outstanding <- t.outstanding + 1;
  t.forwards <- t.forwards + 1;
  Mutex.unlock t.lock;
  let fwd =
    {
      fseq = seq;
      fid = req.Request.id;
      fadmitted = now_ms ();
      fline = line;
      fkey = Request.cache_key req;
      fattempts = 0;
    }
  in
  dispatch_forward t fwd

let admit_split t seq req ~trials ~instance =
  let chunk =
    if t.cfg.chunk_trials > 0 then t.cfg.chunk_trials
    else Dispatch.auto_chunk ~trials ~shards:t.cfg.shards
  in
  let ranges = Dispatch.plan ~trials ~chunk in
  let p =
    {
      sseq = seq;
      sid = req.Request.id;
      sadmitted = now_ms ();
      smax_steps = Engine.default_horizon instance;
      sremaining = List.length ranges;
      sparts = [];
      sfailure = None;
    }
  in
  let subs =
    List.map
      (fun (lo, hi) ->
        {
          parent = p;
          sub_lo = lo;
          sub_hi = hi;
          sub_line = Request.sub_line req ~lo ~hi;
          attempts = 0;
        })
      ranges
  in
  let acts =
    Trace.with_span t.cfg.tracer "dispatch"
      ~attrs:
        [ ("seq", string_of_int seq); ("subjobs", string_of_int (List.length subs)) ]
      (fun () ->
        Mutex.lock t.lock;
        t.outstanding <- t.outstanding + 1;
        t.splits <- t.splits + 1;
        t.subjobs <- t.subjobs + List.length subs;
        List.iter (fun s -> Queue.push s t.jobs) subs;
        let acts = pump_locked t in
        Mutex.unlock t.lock;
        acts)
  in
  run_actions t acts

let admit t seq line =
  Trace.with_span t.cfg.tracer "route"
    ~attrs:[ ("seq", string_of_int seq) ]
    (fun () ->
      match
        Request.of_line ~default_trials:t.cfg.default_trials
          ~default_seed:t.cfg.default_seed
          ?default_ci_target:t.cfg.default_ci_target line
      with
      | Error (msg, id) ->
          Metrics.record_error t.metrics;
          emit t.em seq (Request.error ~id msg)
      | Ok req -> (
          match req.Request.op with
          | Request.Ping ->
              (* Answered at the coordinator: a pong vouches for the
                 routing layer; shard liveness is the heartbeat's job. *)
              Metrics.record_ok t.metrics ~latency_ms:0.;
              emit t.em seq
                (Request.ok ~id:req.Request.id
                   [
                     ("pong", Json.Bool true);
                     ("shards", Json.int t.cfg.shards);
                     ("shards_live", Json.int (List.length (live_indices t)));
                   ])
          | Request.Stats { format } -> admit_stats t seq req format
          | Request.Solve { range = None; trials; instance; _ }
            when t.cfg.split_threshold > 0 && trials >= t.cfg.split_threshold
            ->
              admit_split t seq req ~trials ~instance
          | Request.Estimate { range = None; trials; instance; _ }
            when t.cfg.split_threshold > 0 && trials >= t.cfg.split_threshold
            ->
              admit_split t seq req ~trials ~instance
          | _ -> admit_forward t seq req line))

(* --- supervision ------------------------------------------------------ *)

let heartbeat_line =
  Json.to_string (Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Str "hb") ])

(* One domain runs the whole control loop: heartbeat escalation on the
   configured period, respawn of dead shards when their backoff clock
   expires, and an opportunistic pump so work queued while the fleet
   was empty starts the moment a shard rejoins (or fails for good the
   moment recovery becomes impossible). *)
let do_beats t =
  let beat, expired = Supervisor.begin_beats t.sup in
  List.iter (fun (i, epoch) -> handle_shard_loss t i ~epoch) expired;
  List.iter
    (fun (i, epoch) ->
      match Supervisor.checkout t.sup i with
      | Some (c, e) when e = epoch ->
          let submitted =
            Client.submit c heartbeat_line (fun r ->
                match r with
                | Some _ -> Supervisor.pong t.sup i ~epoch
                | None -> handle_shard_loss t i ~epoch)
          in
          if submitted then begin
            Mutex.lock t.lock;
            t.heartbeats <- t.heartbeats + 1;
            Mutex.unlock t.lock
          end
          else handle_shard_loss t i ~epoch
      | _ -> () (* fenced since begin_beats; nothing to ping *))
    beat

let supervision_loop t stop =
  let period = Option.map (fun ms -> ms /. 1000.) t.cfg.heartbeat_ms in
  let slice = 0.005 in
  let rec loop hb_elapsed =
    if not (Atomic.get stop) then begin
      Unix.sleepf slice;
      (* Respawns: slots whose backoff expired. The spawn itself runs
         outside every lock; a rejoined shard is routable at its new
         epoch immediately, so pump right away. *)
      let due = Supervisor.due_respawns t.sup ~now:(Unix.gettimeofday ()) in
      List.iter
        (fun i ->
          ignore (Supervisor.respawn t.sup i ~now:(Unix.gettimeofday ()));
          (* On success queued jobs can start; on a failed attempt the
             budget may just have run out, in which case the pump fails
             whatever could only have waited for this shard. *)
          pump t)
        due;
      (* Opportunistic pump: jobs can be parked while the fleet is
         empty but recoverable. *)
      (let queued =
         Mutex.lock t.lock;
         let q = not (Queue.is_empty t.jobs) in
         Mutex.unlock t.lock;
         q
       in
       if queued then pump t);
      let hb_elapsed = hb_elapsed +. slice in
      match period with
      | Some p when hb_elapsed >= p ->
          do_beats t;
          loop 0.
      | _ -> loop hb_elapsed
    end
  in
  loop 0.

(* --- lifecycle -------------------------------------------------------- *)

let validate (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Coordinator: shards < 1";
  if cfg.replicas < 1 then invalid_arg "Coordinator: replicas < 1";
  if cfg.sub_inflight < 1 then invalid_arg "Coordinator: sub_inflight < 1";
  if cfg.retries < 0 then invalid_arg "Coordinator: retries < 0";
  if cfg.chunk_trials < 0 then invalid_arg "Coordinator: chunk_trials < 0";
  if cfg.respawn_budget < 0 then invalid_arg "Coordinator: respawn_budget < 0";
  if cfg.suspect_after < 1 then invalid_arg "Coordinator: suspect_after < 1";
  if cfg.dead_after < cfg.suspect_after then
    invalid_arg "Coordinator: dead_after < suspect_after"

let serve cfg ~spawn transport =
  validate cfg;
  let module T = (val transport : Service.TRANSPORT) in
  let sup =
    Supervisor.create
      {
        Supervisor.shards = cfg.shards;
        respawn_budget = cfg.respawn_budget;
        respawn_backoff_ms = cfg.respawn_backoff_ms;
        suspect_after = cfg.suspect_after;
        dead_after = cfg.dead_after;
        fault = cfg.fault;
      }
      ~spawn
  in
  let t =
    {
      cfg;
      ring = Ring.create ~replicas:cfg.replicas (List.init cfg.shards Fun.id);
      sup;
      em = emitter_create T.send;
      metrics = Metrics.create ();
      lock = Mutex.create ();
      done_cv = Condition.create ();
      outstanding = 0;
      dispatches = 0;
      rr = 0;
      next_ticket = 0;
      tickets = Array.init cfg.shards (fun _ -> Hashtbl.create 16);
      jobs = Queue.create ();
      sub_inflight = Array.make cfg.shards 0;
      forwards = 0;
      splits = 0;
      subjobs = 0;
      shard_deaths = 0;
      heartbeats = 0;
      fenced = 0;
    }
  in
  let stop_sup = Atomic.make false in
  let sup_domain =
    if cfg.heartbeat_ms <> None || cfg.respawn_budget > 0 then
      Some (Domain.spawn (fun () -> supervision_loop t stop_sup))
    else None
  in
  let rec read_loop seq =
    match T.recv () with
    | None -> ()
    | Some line ->
        admit t seq line;
        read_loop (seq + 1)
  in
  read_loop 0;
  Mutex.lock t.lock;
  while t.outstanding > 0 do
    Condition.wait t.done_cv t.lock
  done;
  Mutex.unlock t.lock;
  (* Let the fleet finish healing before the final report: respawn
     budgets are finite and backoff is capped, so this terminates. With
     the supervision domain disabled there is nobody to heal. *)
  if sup_domain <> None then
    while Supervisor.healing t.sup do
      Unix.sleepf 0.005
    done;
  Atomic.set stop_sup true;
  Option.iter Domain.join sup_domain;
  let shards_live = Supervisor.live_count t.sup in
  let clients = Supervisor.clients t.sup in
  List.iter Client.close_input clients;
  List.iter Client.join clients;
  List.iter Client.join (Supervisor.drain_zombies t.sup);
  {
    metrics = Metrics.snapshot t.metrics;
    shards = cfg.shards;
    shards_live;
    forwards = t.forwards;
    splits = t.splits;
    subjobs = t.subjobs;
    shard_deaths = t.shard_deaths;
    heartbeats = t.heartbeats;
    respawns = Supervisor.respawns_total t.sup;
    suspects = Supervisor.suspects_total t.sup;
    fenced = t.fenced;
  }

let run_lines cfg ~spawn lines =
  let remaining = ref lines in
  let out = ref [] in
  let olock = Mutex.create () in
  let transport =
    (module struct
      let recv () =
        match !remaining with
        | [] -> None
        | l :: tl ->
            remaining := tl;
            Some l

      let send l =
        Mutex.lock olock;
        out := l :: !out;
        Mutex.unlock olock
    end : Service.TRANSPORT)
  in
  let r = serve cfg ~spawn transport in
  (List.rev !out, r)

let report_to_string (r : report) =
  let m = r.metrics in
  let b = Buffer.create 256 in
  Printf.bprintf b
    "coordinator: %d requests (%d ok, %d errors, %d timeouts), %d retries\n"
    m.Metrics.requests m.Metrics.ok m.Metrics.errors m.Metrics.timeouts
    m.Metrics.retries;
  Printf.bprintf b
    "shards: %d spawned, %d live at shutdown, %d lost, %d respawned\n"
    r.shards r.shards_live r.shard_deaths r.respawns;
  Printf.bprintf b "dispatch: %d forwarded, %d split into %d sub-jobs\n"
    r.forwards r.splits r.subjobs;
  Printf.bprintf b "heartbeats: %d" r.heartbeats;
  (if r.suspects > 0 || r.fenced > 0 then
     Printf.bprintf b "\nsupervision: %d suspect transitions, %d fenced replies"
       r.suspects r.fenced);
  (match m.Metrics.latency with
  | None -> ()
  | Some l ->
      Printf.bprintf b
        "\nlatency ms: p50 %.2f  p95 %.2f  max %.2f  (%d responses)"
        l.Metrics.p50_ms l.Metrics.p95_ms l.Metrics.max_ms l.Metrics.count);
  Buffer.contents b
