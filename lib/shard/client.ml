module Service = Suu_service.Service
module Fault = Suu_service.Fault
module Tcp = Suu_service.Tcp

(* A peer is the raw line pipe to one worker: the client layer above it
   only ever needs these five operations, so subprocess workers,
   TCP-connected workers and in-process workers (a Service.serve in a
   domain, for tests and benchmarks) are interchangeable. *)
type peer = {
  send_line : string -> unit;
  recv_line : unit -> string option;
  kill_peer : unit -> unit;  (* abrupt loss: SIGKILL / drop the queues *)
  close_input : unit -> unit;  (* graceful EOF: worker drains and exits *)
  reap : unit -> unit;  (* after the reader saw EOF: waitpid / join *)
}

type t = {
  id : int;
  peer : peer;
  wlock : Mutex.t;
      (* serialises submit's push-callback + write pair, so the
         callback FIFO order always matches the line order on the
         pipe — the worker answers in request order, so FIFO popping
         pairs every response with its request *)
  qlock : Mutex.t;  (* guards pending / alive / inflight; never held
                       across a blocking pipe operation *)
  pending : (string option -> unit) Queue.t;
  mutable alive : bool;
  mutable inflight : int;
  mutable reader : unit Domain.t option;
}

let id t = t.id

let alive t =
  Mutex.lock t.qlock;
  let a = t.alive in
  Mutex.unlock t.qlock;
  a

let inflight t =
  Mutex.lock t.qlock;
  let n = t.inflight in
  Mutex.unlock t.qlock;
  n

(* The reader: pops the oldest callback for each response line; on EOF
   (worker exit, kill, or torn pipe) marks the client dead and drains
   every outstanding callback with [None] exactly once. Only I/O-class
   failures are folded into EOF — Out_of_memory / Stack_overflow must
   not masquerade as worker loss. *)
let reader_loop t =
  let rec loop () =
    match
      try t.peer.recv_line ()
      with Unix.Unix_error _ | Sys_error _ | End_of_file -> None
    with
    | Some line ->
        Mutex.lock t.qlock;
        let cb =
          if Queue.is_empty t.pending then None
          else begin
            t.inflight <- t.inflight - 1;
            Some (Queue.pop t.pending)
          end
        in
        Mutex.unlock t.qlock;
        (match cb with Some f -> f (Some line) | None -> ());
        loop ()
    | None ->
        Mutex.lock t.qlock;
        t.alive <- false;
        let orphans = Queue.fold (fun acc f -> f :: acc) [] t.pending in
        Queue.clear t.pending;
        t.inflight <- 0;
        Mutex.unlock t.qlock;
        List.iter (fun f -> f None) (List.rev orphans)
  in
  loop ()

let custom ~id peer =
  let t =
    {
      id;
      peer;
      wlock = Mutex.create ();
      qlock = Mutex.create ();
      pending = Queue.create ();
      alive = true;
      inflight = 0;
      reader = None;
    }
  in
  t.reader <- Some (Domain.spawn (fun () -> reader_loop t));
  t

let submit t line cb =
  Mutex.lock t.wlock;
  Mutex.lock t.qlock;
  let admitted =
    if t.alive then begin
      Queue.push cb t.pending;
      t.inflight <- t.inflight + 1;
      true
    end
    else false
  in
  Mutex.unlock t.qlock;
  (* A failed write is not reported here: the reader will see EOF and
     drain this callback (with every other pending one) with [None]. *)
  if admitted then (
    try t.peer.send_line line with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.unlock t.wlock;
  admitted

let kill t =
  try t.peer.kill_peer () with Unix.Unix_error _ | Sys_error _ -> ()

let close_input t =
  try t.peer.close_input () with Unix.Unix_error _ | Sys_error _ -> ()

let join t =
  (match t.reader with
  | Some d ->
      t.reader <- None;
      Domain.join d
  | None -> ());
  try t.peer.reap () with Unix.Unix_error _ | Sys_error _ -> ()

(* -- subprocess workers (pipe transport) ------------------------------- *)

let process ~id ~prog ~argv =
  (* A SIGKILLed worker tears the pipe; without this, the coordinator's
     next write would die of SIGPIPE instead of raising (and being
     absorbed) as EPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ((ic, oc) as ch) = Unix.open_process_args prog argv in
  let pid = Unix.process_pid ch in
  let wrote_eof = ref false in
  custom ~id
    {
      send_line =
        (fun l ->
          output_string oc l;
          output_char oc '\n';
          flush oc);
      recv_line = (fun () -> In_channel.input_line ic);
      kill_peer = (fun () -> Unix.kill pid Sys.sigkill);
      close_input =
        (fun () ->
          if not !wrote_eof then begin
            wrote_eof := true;
            close_out oc
          end);
      reap =
        (fun () ->
          if not !wrote_eof then begin
            wrote_eof := true;
            close_out_noerr oc
          end;
          close_in_noerr ic;
          ignore (Unix.waitpid [] pid));
    }

(* -- TCP workers ------------------------------------------------------- *)

(* The connecting side of the socket transport. Unlike a pipe child,
   a TCP peer can *reconnect*: on a torn or timed-out connection the
   reader tears the old socket down, backs off (capped exponential with
   deterministic jitter, same splitmix64 discipline as every other
   delay in the system), dials again and re-sends every request line
   that has not been answered yet. Re-send is idempotent because the
   worker recomputes deterministically from the request line — the
   paper's engine seeds each trial from the request, not from worker
   state — so the answer lines come back byte-identical (modulo cache
   flags, which merge layers scrub). *)

type tcp_state = {
  pm : Mutex.t;  (* guards the fields below *)
  wm : Mutex.t;
      (* serialises all socket writes: a submit racing the reader's
         reconnect re-send must not interleave bytes on the new
         socket. Never held across a blocking read or a backoff
         sleep. Order: wm > pm. *)
  mutable conn : Tcp.conn option;
  unanswered : string Queue.t;
      (* sent but not answered, FIFO: head pairs with the next
         response line; the whole queue is replayed on reconnect *)
  mutable wrote_eof : bool;
  mutable killed : bool;
  mutable conn_epoch : int;  (* bumped per reconnect; salts jitter *)
  mutable reconnects_left : int;
}

let tcp_connect ~connect_timeout_s ~read_timeout_s addrtext =
  match Tcp.parse_addr addrtext with
  | Error e -> failwith e
  | Ok (addr, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         (* Nonblocking connect + select: a plain connect has no
            timeout and can hang on a half-dead peer. *)
         Unix.set_nonblock fd;
         (try Unix.connect fd (Unix.ADDR_INET (addr, port))
          with
         | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
           let _, w, _ = Unix.select [] [ fd ] [] connect_timeout_s in
           if w = [] then
             raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", addrtext));
           (match Unix.getsockopt_error fd with
           | None -> ()
           | Some e -> raise (Unix.Unix_error (e, "connect", addrtext))));
         Unix.clear_nonblock fd;
         if read_timeout_s > 0. then
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout_s;
         Tcp.conn_of_fd fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)

let tcp_backoff ~backoff_ms ~fault ~epoch ~attempt =
  let base = backoff_ms *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min base 200. in
  let j = Fault.jitter fault ~key:((epoch * 97) + attempt) in
  Unix.sleepf (capped *. (0.5 +. j) /. 1000.)

let tcp_peer ?(connect_timeout_s = 1.0) ?(read_timeout_s = 0.)
    ?(reconnects = 3) ?(backoff_ms = 5.) ?(fault = Fault.none) ?kill_pid
    ?(reap_extra = fun () -> ()) ~addr () =
  (* A write to a torn socket must raise EPIPE (absorbed by the
     reconnect policy), not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let connect () = tcp_connect ~connect_timeout_s ~read_timeout_s addr in
  (* The initial dial raises on failure: a worker we never reached is a
     failed spawn, which the supervisor charges against the respawn
     budget, not the reconnect budget. *)
  let st =
    {
      pm = Mutex.create ();
      wm = Mutex.create ();
      conn = Some (connect ());
      unanswered = Queue.create ();
      wrote_eof = false;
      killed = false;
      conn_epoch = 0;
      reconnects_left = reconnects;
    }
  in
  let current_conn () =
    Mutex.lock st.pm;
    let c = st.conn in
    Mutex.unlock st.pm;
    c
  in
  let send_line l =
    Mutex.lock st.wm;
    Mutex.lock st.pm;
    Queue.push l st.unanswered;
    let c = st.conn in
    Mutex.unlock st.pm;
    (* A write into a dead socket is fine: the line is queued and will
       be replayed after the reader reconnects. *)
    (match c with
    | Some c -> (
        try Tcp.send_line c l with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ());
    Mutex.unlock st.wm
  in
  (* Reconnect path (reader domain only). The dead socket is shut down
     but stays open — and stays in [st.conn] — until the swap under
     [wm], so a concurrent submit writes into the corpse (harmlessly)
     rather than into a recycled descriptor. *)
  let rec reconnect old =
    Tcp.shutdown_all old;
    Mutex.lock st.pm;
    let give_up =
      st.killed
      || (st.wrote_eof && Queue.is_empty st.unanswered)
      || st.reconnects_left <= 0
    in
    if give_up then begin
      Mutex.unlock st.pm;
      Mutex.lock st.wm;
      Mutex.lock st.pm;
      st.conn <- None;
      Mutex.unlock st.pm;
      Tcp.close old;
      Mutex.unlock st.wm;
      None
    end
    else begin
      st.reconnects_left <- st.reconnects_left - 1;
      st.conn_epoch <- st.conn_epoch + 1;
      let epoch = st.conn_epoch in
      let attempt = reconnects - st.reconnects_left in
      Mutex.unlock st.pm;
      tcp_backoff ~backoff_ms ~fault ~epoch ~attempt;
      match connect () with
      | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
          reconnect old
      | nc ->
          Mutex.lock st.wm;
          Mutex.lock st.pm;
          if st.killed then begin
            Mutex.unlock st.pm;
            Mutex.unlock st.wm;
            Tcp.close nc;
            None
          end
          else begin
            let replay = Queue.fold (fun acc l -> l :: acc) [] st.unanswered in
            st.conn <- Some nc;
            let eof = st.wrote_eof in
            Mutex.unlock st.pm;
            Tcp.close old;
            let ok =
              try
                List.iter (Tcp.send_line nc) (List.rev replay);
                if eof then Tcp.shutdown_send nc;
                true
              with Unix.Unix_error _ | Sys_error _ -> false
            in
            Mutex.unlock st.wm;
            if ok then Some nc else reconnect nc
          end
    end
  in
  let rec recv_line () =
    match current_conn () with
    | None -> None
    | Some c -> (
        match Tcp.recv_line c with
        | Some line ->
            Mutex.lock st.pm;
            if not (Queue.is_empty st.unanswered) then
              ignore (Queue.pop st.unanswered);
            (* A delivered answer is progress: the reconnect budget
               bounds *consecutive* failed cycles, so a flaky but
               functioning worker is not abandoned mid-stream. *)
            st.reconnects_left <- reconnects;
            Mutex.unlock st.pm;
            Some line
        | None -> after_drop c
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            (* Read timeout. Only an *owed* answer that fails to arrive
               is a fault; an idle connection just keeps waiting. *)
            Mutex.lock st.pm;
            let idle = Queue.is_empty st.unanswered && not st.wrote_eof in
            Mutex.unlock st.pm;
            if idle then recv_line () else after_drop c
        | exception (Unix.Unix_error _ | Sys_error _) -> after_drop c)
  and after_drop c =
    Mutex.lock st.pm;
    let finished = st.killed || (st.wrote_eof && Queue.is_empty st.unanswered) in
    Mutex.unlock st.pm;
    if finished then begin
      Mutex.lock st.wm;
      Mutex.lock st.pm;
      st.conn <- None;
      Mutex.unlock st.pm;
      Tcp.close c;
      Mutex.unlock st.wm;
      None
    end
    else match reconnect c with None -> None | Some _ -> recv_line ()
  in
  let close_input () =
    Mutex.lock st.wm;
    Mutex.lock st.pm;
    st.wrote_eof <- true;
    let c = st.conn in
    Mutex.unlock st.pm;
    (match c with Some c -> Tcp.shutdown_send c | None -> ());
    Mutex.unlock st.wm
  in
  let kill_peer () =
    Mutex.lock st.pm;
    st.killed <- true;
    let c = st.conn in
    Mutex.unlock st.pm;
    (match kill_pid with
    | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    (* Wake the reader without closing: the fd stays reserved until
       reap, so nothing races a recycled descriptor. *)
    match c with Some c -> Tcp.shutdown_all c | None -> ()
  in
  let reap () =
    Mutex.lock st.pm;
    let c = st.conn in
    st.conn <- None;
    Mutex.unlock st.pm;
    (match c with Some c -> Tcp.close c | None -> ());
    (match kill_pid with
    | Some pid -> ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0))
    | None -> ());
    reap_extra ()
  in
  { send_line; recv_line; kill_peer; close_input; reap }

let tcp ~id ?connect_timeout_s ?read_timeout_s ?reconnects ?backoff_ms ?fault
    ~addr () =
  custom ~id
    (tcp_peer ?connect_timeout_s ?read_timeout_s ?reconnects ?backoff_ms
       ?fault ~addr ())

(* A subprocess worker reached over TCP: spawn [prog argv] (normally
   [suu serve --quiet --listen 127.0.0.1:0 …]), read its one-line
   announce "listening HOST:PORT" from its stdout, then dial. Any
   failure here kills and reaps the child and re-raises — a failed
   spawn, charged to the supervisor's respawn budget. *)
let tcp_process ~id ?connect_timeout_s ?read_timeout_s ?reconnects
    ?backoff_ms ?fault ~prog ~argv () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ((ic, oc) as ch) = Unix.open_process_args prog argv in
  let pid = Unix.process_pid ch in
  (* The worker in listen mode never reads stdin; close our end now so
     nothing holds a stray pipe open. *)
  close_out_noerr oc;
  let fail msg =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    close_in_noerr ic;
    ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0));
    failwith msg
  in
  let addr =
    match In_channel.input_line ic with
    | Some line when String.length line > 10
                     && String.sub line 0 10 = "listening " ->
        String.sub line 10 (String.length line - 10)
    | Some line -> fail (Printf.sprintf "tcp worker: bad announce %S" line)
    | None -> fail "tcp worker: exited before announcing its address"
    | exception Sys_error e -> fail ("tcp worker: announce read failed: " ^ e)
  in
  match
    tcp_peer ?connect_timeout_s ?read_timeout_s ?reconnects ?backoff_ms
      ?fault ~kill_pid:pid ~reap_extra:(fun () -> close_in_noerr ic) ~addr ()
  with
  | peer -> custom ~id peer
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
      fail "tcp worker: connect to announced address failed"

(* -- in-process workers ------------------------------------------------ *)

(* Unbounded blocking string channel; [close] lets readers drain what
   is queued, [wreck] also drops it (abrupt loss). *)
type chan = {
  m : Mutex.t;
  cv : Condition.t;
  q : string Queue.t;
  mutable closed : bool;
}

let chan () =
  { m = Mutex.create (); cv = Condition.create (); q = Queue.create (); closed = false }

let chan_push ch l =
  Mutex.lock ch.m;
  if not ch.closed then begin
    Queue.push l ch.q;
    Condition.signal ch.cv
  end;
  Mutex.unlock ch.m

let chan_pop ch =
  Mutex.lock ch.m;
  while Queue.is_empty ch.q && not ch.closed do
    Condition.wait ch.cv ch.m
  done;
  let r = if Queue.is_empty ch.q then None else Some (Queue.pop ch.q) in
  Mutex.unlock ch.m;
  r

let chan_close ch =
  Mutex.lock ch.m;
  ch.closed <- true;
  Condition.broadcast ch.cv;
  Mutex.unlock ch.m

let chan_wreck ch =
  Mutex.lock ch.m;
  ch.closed <- true;
  Queue.clear ch.q;
  Condition.broadcast ch.cv;
  Mutex.unlock ch.m

let local ~id cfg =
  let inq = chan () and outq = chan () in
  let svc =
    Domain.spawn (fun () ->
        let transport =
          (module struct
            let recv () = chan_pop inq
            let send l = chan_push outq l
          end : Service.TRANSPORT)
        in
        (try ignore (Service.serve cfg transport) with _ -> ());
        chan_close outq)
  in
  let joined = ref false in
  custom ~id
    {
      send_line = (fun l -> chan_push inq l);
      recv_line = (fun () -> chan_pop outq);
      kill_peer =
        (fun () ->
          chan_wreck inq;
          chan_wreck outq);
      close_input = (fun () -> chan_close inq);
      reap =
        (fun () ->
          if not !joined then begin
            joined := true;
            Domain.join svc
          end);
    }
