module Service = Suu_service.Service

(* A peer is the raw line pipe to one worker: the client layer above it
   only ever needs these five operations, so subprocess workers and
   in-process workers (a Service.serve in a domain, for tests and
   benchmarks) are interchangeable. *)
type peer = {
  send_line : string -> unit;
  recv_line : unit -> string option;
  kill_peer : unit -> unit;  (* abrupt loss: SIGKILL / drop the queues *)
  close_input : unit -> unit;  (* graceful EOF: worker drains and exits *)
  reap : unit -> unit;  (* after the reader saw EOF: waitpid / join *)
}

type t = {
  id : int;
  peer : peer;
  wlock : Mutex.t;
      (* serialises submit's push-callback + write pair, so the
         callback FIFO order always matches the line order on the
         pipe — the worker answers in request order, so FIFO popping
         pairs every response with its request *)
  qlock : Mutex.t;  (* guards pending / alive / inflight; never held
                       across a blocking pipe operation *)
  pending : (string option -> unit) Queue.t;
  mutable alive : bool;
  mutable inflight : int;
  mutable reader : unit Domain.t option;
}

let id t = t.id

let alive t =
  Mutex.lock t.qlock;
  let a = t.alive in
  Mutex.unlock t.qlock;
  a

let inflight t =
  Mutex.lock t.qlock;
  let n = t.inflight in
  Mutex.unlock t.qlock;
  n

(* The reader: pops the oldest callback for each response line; on EOF
   (worker exit, kill, or torn pipe) marks the client dead and drains
   every outstanding callback with [None] exactly once. *)
let reader_loop t =
  let rec loop () =
    match (try t.peer.recv_line () with _ -> None) with
    | Some line ->
        Mutex.lock t.qlock;
        let cb =
          if Queue.is_empty t.pending then None
          else begin
            t.inflight <- t.inflight - 1;
            Some (Queue.pop t.pending)
          end
        in
        Mutex.unlock t.qlock;
        (match cb with Some f -> f (Some line) | None -> ());
        loop ()
    | None ->
        Mutex.lock t.qlock;
        t.alive <- false;
        let orphans = Queue.fold (fun acc f -> f :: acc) [] t.pending in
        Queue.clear t.pending;
        t.inflight <- 0;
        Mutex.unlock t.qlock;
        List.iter (fun f -> f None) (List.rev orphans)
  in
  loop ()

let make ~id peer =
  let t =
    {
      id;
      peer;
      wlock = Mutex.create ();
      qlock = Mutex.create ();
      pending = Queue.create ();
      alive = true;
      inflight = 0;
      reader = None;
    }
  in
  t.reader <- Some (Domain.spawn (fun () -> reader_loop t));
  t

let submit t line cb =
  Mutex.lock t.wlock;
  Mutex.lock t.qlock;
  let admitted =
    if t.alive then begin
      Queue.push cb t.pending;
      t.inflight <- t.inflight + 1;
      true
    end
    else false
  in
  Mutex.unlock t.qlock;
  (* A failed write is not reported here: the reader will see EOF and
     drain this callback (with every other pending one) with [None]. *)
  if admitted then (try t.peer.send_line line with _ -> ());
  Mutex.unlock t.wlock;
  admitted

let kill t = try t.peer.kill_peer () with _ -> ()
let close_input t = try t.peer.close_input () with _ -> ()

let join t =
  (match t.reader with
  | Some d ->
      t.reader <- None;
      Domain.join d
  | None -> ());
  try t.peer.reap () with _ -> ()

(* -- subprocess workers ------------------------------------------------ *)

let process ~id ~prog ~argv =
  (* A SIGKILLed worker tears the pipe; without this, the coordinator's
     next write would die of SIGPIPE instead of raising (and being
     absorbed) as EPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ((ic, oc) as ch) = Unix.open_process_args prog argv in
  let pid = Unix.process_pid ch in
  let wrote_eof = ref false in
  make ~id
    {
      send_line =
        (fun l ->
          output_string oc l;
          output_char oc '\n';
          flush oc);
      recv_line = (fun () -> In_channel.input_line ic);
      kill_peer = (fun () -> Unix.kill pid Sys.sigkill);
      close_input =
        (fun () ->
          if not !wrote_eof then begin
            wrote_eof := true;
            close_out oc
          end);
      reap =
        (fun () ->
          if not !wrote_eof then begin
            wrote_eof := true;
            close_out_noerr oc
          end;
          close_in_noerr ic;
          ignore (Unix.waitpid [] pid));
    }

(* -- in-process workers ------------------------------------------------ *)

(* Unbounded blocking string channel; [close] lets readers drain what
   is queued, [wreck] also drops it (abrupt loss). *)
type chan = {
  m : Mutex.t;
  cv : Condition.t;
  q : string Queue.t;
  mutable closed : bool;
}

let chan () =
  { m = Mutex.create (); cv = Condition.create (); q = Queue.create (); closed = false }

let chan_push ch l =
  Mutex.lock ch.m;
  if not ch.closed then begin
    Queue.push l ch.q;
    Condition.signal ch.cv
  end;
  Mutex.unlock ch.m

let chan_pop ch =
  Mutex.lock ch.m;
  while Queue.is_empty ch.q && not ch.closed do
    Condition.wait ch.cv ch.m
  done;
  let r = if Queue.is_empty ch.q then None else Some (Queue.pop ch.q) in
  Mutex.unlock ch.m;
  r

let chan_close ch =
  Mutex.lock ch.m;
  ch.closed <- true;
  Condition.broadcast ch.cv;
  Mutex.unlock ch.m

let chan_wreck ch =
  Mutex.lock ch.m;
  ch.closed <- true;
  Queue.clear ch.q;
  Condition.broadcast ch.cv;
  Mutex.unlock ch.m

let local ~id cfg =
  let inq = chan () and outq = chan () in
  let svc =
    Domain.spawn (fun () ->
        let transport =
          (module struct
            let recv () = chan_pop inq
            let send l = chan_push outq l
          end : Service.TRANSPORT)
        in
        (try ignore (Service.serve cfg transport) with _ -> ());
        chan_close outq)
  in
  let joined = ref false in
  make ~id
    {
      send_line = (fun l -> chan_push inq l);
      recv_line = (fun () -> chan_pop outq);
      kill_peer =
        (fun () ->
          chan_wreck inq;
          chan_wreck outq);
      close_input = (fun () -> chan_close inq);
      reap =
        (fun () ->
          if not !joined then begin
            joined := true;
            Domain.join svc
          end);
    }
