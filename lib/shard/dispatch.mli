(** Trial-range planning and retry pacing for the coordinator — the
    pure arithmetic, kept out of the stateful dispatch loop so it can
    be unit-tested exhaustively. *)

val plan : trials:int -> chunk:int -> (int * int) list
(** Contiguous half-open ranges [(lo, hi)] of width at most [chunk]
    partitioning [\[0, trials)], in increasing order. The partition —
    together with the engine's per-trial seeding — is what makes the
    merged estimate bit-identical to the unsplit run.
    @raise Invalid_argument when [trials < 1] or [chunk < 1]. *)

val auto_chunk : trials:int -> shards:int -> int
(** Default chunk width: about four chunks per shard (at least 1), so
    the job queue can rebalance around a slow or dying shard.
    @raise Invalid_argument when [trials < 1] or [shards < 1]. *)

val backoff_s : base_ms:float -> fault:Suu_service.Fault.spec -> key:int -> attempt:int -> float
(** Capped exponential backoff (cap 50 ms) with deterministic jitter in
    [0.5, 1] drawn from the fault spec's seed — the same discipline as
    the service's transient retries, so chaos runs reproduce. *)
