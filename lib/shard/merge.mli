(** Decoding and merging of worker responses at the coordinator.

    Two merge planes: {e results} — trial-range partial answers
    concatenate through {!Suu_sim.Engine.merge_ranges} into a response
    byte-identical to the unsplit run — and {e telemetry} — per-shard
    raw stats fold into one summed counter set and one merged latency
    histogram for the coordinator's Prometheus exposition. *)

(** One trial-range partial answer: the raw material of a sub-job. The
    samples are integral makespans, so they crossed the JSON wire
    bit-exactly. *)
type part = {
  algo : string;
  lo : int;
  hi : int;
  trials : int;
      (** trials the shard actually executed — [hi - lo] unless the
          sub-job's [ci_target] stopped it early (or the responding
          shard predates the field, which defaults to the full width) *)
  incomplete : int;
  samples : float array;
}

type response =
  | Part of part  (** [status:"ok"] with [partial:true] *)
  | Whole  (** [status:"ok"], not partial — a forwarded reply *)
  | Err of { msg : string; reason : string option }
  | Expired of float option  (** [status:"timeout"], with its deadline *)
  | Garbled of string  (** unparseable or shape-violating line *)

val classify : string -> response
(** Classify one worker response line. *)

val merged_fields :
  max_steps:int -> part list -> (string * Suu_service.Json.t) list
(** The ok-response fields ([algo], [trials], [mean], [ci95], [p95],
    [incomplete]) for the merge of [parts] (any order; sorted by [lo]
    internally). When the parts partition the request's trial range,
    the fields are byte-identical to the single-process response —
    pinned by the [split-merge] conformance property and the shard test
    suite. [max_steps] must be the engine default
    ({!Suu_sim.Engine.default_horizon} of the instance) — it only feeds
    the all-truncated fallback.
    @raise Invalid_argument on an empty part list. *)

(** Cross-shard telemetry folded from raw stats responses. *)
type telemetry = {
  shards_reporting : int;
  service : (string * int) list;  (** summed worker service counters *)
  engine : (string * int) list;  (** summed worker engine counters *)
  latency : Suu_obs.Histogram.t option;
      (** merged worker ok-latency histogram; [None] when no shard has
          recorded a latency yet *)
}

val telemetry_of_responses : string list -> telemetry
(** Fold the raw stats responses pulled from the live shards.
    Unparseable lines are skipped (a shard can die mid-pull); missing
    fields contribute zero. *)
