(** One worker shard, seen from the coordinator.

    A client owns the line pipe to one worker process (or TCP peer, or
    in-process worker) plus a reader domain and a FIFO of response
    callbacks. {!submit} pushes the callback and writes the request
    line as one atomic step, so the FIFO order matches the wire order;
    since the service answers in request order, the reader pairs each
    incoming response line with the oldest callback. Worker loss —
    however it happens: SIGKILL, crash, torn pipe, reconnect budget
    exhausted — surfaces uniformly as EOF on the reader, which marks
    the client dead and drains {e every} outstanding callback with
    [None] exactly once. The coordinator's invariant that every
    admitted request is answered rests on that: a callback passed to a
    successful [submit] always fires, with [Some response] or with
    [None]. *)

type t

(** {2 Transports} *)

(** The raw line pipe to one worker: five operations, so subprocess,
    TCP and in-process workers are interchangeable, and tests can
    hand-craft a peer (e.g. one that never answers, or answers with
    fabricated zombie lines). [kill_peer] is abrupt loss — the reader
    must subsequently see EOF; [close_input] is graceful EOF — the
    worker drains admitted work and exits; [reap] runs after the reader
    saw EOF (waitpid / join / close). *)
type peer = {
  send_line : string -> unit;
  recv_line : unit -> string option;
  kill_peer : unit -> unit;
  close_input : unit -> unit;
  reap : unit -> unit;
}

val custom : id:int -> peer -> t
(** Wrap a hand-built peer: spawns the reader domain over it. The seam
    every other constructor goes through. *)

val process : id:int -> prog:string -> argv:string array -> t
(** A subprocess worker: spawns [prog argv] (normally
    [suu serve --quiet …]) over a pipe pair. Sets SIGPIPE to ignore so
    writes to a killed worker raise (and are absorbed) instead of
    terminating the coordinator. *)

val tcp_peer :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?reconnects:int ->
  ?backoff_ms:float ->
  ?fault:Suu_service.Fault.spec ->
  ?kill_pid:int ->
  ?reap_extra:(unit -> unit) ->
  addr:string ->
  unit ->
  peer
(** The connecting side of the TCP transport, as a bare peer (so tests
    can wrap it before {!custom}). Dials [addr] immediately — raising
    on failure, which callers treat as a failed spawn. On a torn,
    reset or (with [read_timeout_s > 0]) timed-out connection while
    answers are owed, the reader shuts the socket down, backs off
    (capped exponential on [backoff_ms] with deterministic
    {!Suu_service.Fault.jitter}), dials again and replays every
    unanswered request line in order — idempotent because workers
    recompute deterministically from the request line. After
    [reconnects] {e consecutive} cycles without a single delivered
    answer (every answer resets the budget) the peer reports EOF and
    the client drains. [read_timeout_s = 0.] (default) disables the read timeout;
    an idle timed-out wait (nothing owed) never burns the budget.
    [kill_pid] is SIGKILLed by [kill_peer] and reaped by [reap]. *)

val tcp :
  id:int ->
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?reconnects:int ->
  ?backoff_ms:float ->
  ?fault:Suu_service.Fault.spec ->
  addr:string ->
  unit ->
  t
(** {!custom} over {!tcp_peer}: a worker already listening at [addr]
    (a remote peer, or an in-test {!Suu_service.Tcp.serve_connections}). *)

val tcp_process :
  id:int ->
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?reconnects:int ->
  ?backoff_ms:float ->
  ?fault:Suu_service.Fault.spec ->
  prog:string ->
  argv:string array ->
  unit ->
  t
(** A subprocess worker reached over TCP: spawns [prog argv] (which
    must include [--listen 127.0.0.1:0] or similar), reads the
    worker's one-line announce ["listening HOST:PORT"] from its
    stdout, then dials. Raises [Failure] if the worker fails to
    announce or the dial fails — a failed spawn, charged to the
    supervisor's respawn budget. *)

val local : id:int -> Suu_service.Service.config -> t
(** An in-process worker: {!Suu_service.Service.serve} in its own
    domain over in-memory blocking channels. Same observable contract
    as {!process} — used by tests and benchmarks, where [kill]
    models abrupt process loss by wrecking both channels. *)

(** {2 Operations} *)

val id : t -> int

val submit : t -> string -> (string option -> unit) -> bool
(** [submit t line cb] sends one request line; [cb] fires exactly once,
    from the reader domain, with [Some response_line] or — if the worker
    is lost first — [None]. Returns [false] (and never fires [cb]) when
    the client is already dead. The callback runs on the reader domain:
    it must not block on this client. *)

val alive : t -> bool
(** [false] once the reader has seen EOF. A [true] answer is advisory —
    the worker can die between the check and a submit. *)

val inflight : t -> int
(** Submitted lines whose callbacks have not fired yet. *)

val kill : t -> unit
(** Abrupt worker loss (SIGKILL / wrecked channels / torn socket). The
    reader then drains outstanding callbacks with [None]. Idempotent. *)

val close_input : t -> unit
(** Graceful shutdown: EOF on the worker's input; the worker drains its
    queue, answers everything admitted, and exits. Idempotent. *)

val join : t -> unit
(** Wait for the reader domain and reap the worker (waitpid / domain
    join / socket close). Call after {!kill} or {!close_input}. *)
