(** One worker shard, seen from the coordinator.

    A client owns the line pipe to one worker process (or in-process
    worker) plus a reader domain and a FIFO of response callbacks.
    {!submit} pushes the callback and writes the request line as one
    atomic step, so the FIFO order matches the wire order; since the
    service answers in request order, the reader pairs each incoming
    response line with the oldest callback. Worker loss — however it
    happens: SIGKILL, crash, torn pipe — surfaces uniformly as EOF on
    the reader, which marks the client dead and drains {e every}
    outstanding callback with [None] exactly once. The coordinator's
    invariant that every admitted request is answered rests on that:
    a callback passed to a successful [submit] always fires, with
    [Some response] or with [None]. *)

type t

val process : id:int -> prog:string -> argv:string array -> t
(** A subprocess worker: spawns [prog argv] (normally
    [suu serve --quiet …]) over a pipe pair. Sets SIGPIPE to ignore so
    writes to a killed worker raise (and are absorbed) instead of
    terminating the coordinator. *)

val local : id:int -> Suu_service.Service.config -> t
(** An in-process worker: {!Suu_service.Service.serve} in its own
    domain over in-memory blocking channels. Same observable contract
    as {!process} — used by tests and benchmarks, where [kill]
    models abrupt process loss by wrecking both channels. *)

val id : t -> int

val submit : t -> string -> (string option -> unit) -> bool
(** [submit t line cb] sends one request line; [cb] fires exactly once,
    from the reader domain, with [Some response_line] or — if the worker
    is lost first — [None]. Returns [false] (and never fires [cb]) when
    the client is already dead. The callback runs on the reader domain:
    it must not block on this client. *)

val alive : t -> bool
(** [false] once the reader has seen EOF. A [true] answer is advisory —
    the worker can die between the check and a submit. *)

val inflight : t -> int
(** Submitted lines whose callbacks have not fired yet. *)

val kill : t -> unit
(** Abrupt worker loss (SIGKILL / wrecked channels). The reader then
    drains outstanding callbacks with [None]. Idempotent. *)

val close_input : t -> unit
(** Graceful shutdown: EOF on the worker's input; the worker drains its
    queue, answers everything admitted, and exits. Idempotent. *)

val join : t -> unit
(** Wait for the reader domain and reap the worker (waitpid / domain
    join). Call after {!kill} or {!close_input}. *)
