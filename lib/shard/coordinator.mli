(** The sharding coordinator: one process speaking the service's
    line-JSON protocol on its transport, fronting a fleet of worker
    shards (each an ordinary {!Suu_service.Service} over its own pipe).

    {2 Routing}

    Whole requests are routed by consistent hashing on the request's
    canonical cache key ({!Suu_service.Request.cache_key}): equal keys
    always reach the same shard, so each shard's LRU cache stays hot on
    its slice of the keyspace and the fleet's effective cache capacity
    is the {e sum} of the shards' — the capacity-scaling half of the
    sharding story. Keyless ops (info) round-robin over the live set.

    {2 Splitting}

    A Monte-Carlo request with at least [split_threshold] trials is
    split into contiguous trial-range sub-jobs ({!Dispatch.plan}, the
    wire's ["range":[lo,hi]]) fed through a job queue that keeps at most
    [sub_inflight] sub-jobs outstanding per shard. Because the engine
    seeds each trial independently of its neighbours, the concatenated
    partial samples are the unsplit run's sample vector, and the merged
    response ({!Merge.merged_fields}) is {e byte-identical} to the
    single-process answer — certified by the [split-merge] conformance
    property and the shard test suite.

    {2 Failure model}

    Worker loss surfaces as EOF on the shard's pipe; every request or
    sub-job in flight there is re-dispatched to a surviving shard, up to
    [retries] times each with capped deterministic backoff, after which
    the request answers [reason:"shard_lost"] ([reason:"unavailable"]
    once no shard remains). Lost shards are not respawned. A heartbeat
    domain pings live shards every [heartbeat_ms] so quiet deployments
    also notice deaths. Every admitted request is answered exactly once
    and responses leave in request order — the same contract as a single
    service. Worker loss is injectable deterministically through the
    fault spec's [kill] rate ({!Suu_service.Fault.Kill}), keyed by the
    coordinator's dispatch counter.

    {2 Telemetry}

    [stats] requests are answered by the coordinator: it pulls raw
    stats from every live shard and merges them — counters summed
    ({!Suu_obs.Counters.merge_snapshots}), latency histograms merged
    bucket-wise ({!Suu_obs.Histogram.merge}) — into one response, or for
    [format:"prom"] one Prometheus exposition with the coordinator's own
    counters under [suu_coord_*] and the fleet's under [suu_shard_*].
    [ping] is answered locally with shard liveness attached. Route,
    dispatch and merge phases record spans when [tracer] is enabled. *)

type config = {
  shards : int;  (** worker shards to spawn (>= 1) *)
  replicas : int;  (** ring virtual nodes per shard *)
  split_threshold : int;
      (** split Monte-Carlo requests with at least this many trials;
          [0] disables splitting (everything forwards whole) *)
  chunk_trials : int;
      (** trials per sub-job; [0] picks {!Dispatch.auto_chunk} *)
  sub_inflight : int;  (** outstanding sub-jobs per shard (>= 1) *)
  retries : int;  (** re-dispatches per request or sub-job after shard loss *)
  retry_backoff_ms : float;  (** re-dispatch backoff base (capped at 50 ms) *)
  heartbeat_ms : float option;  (** ping period; [None] disables *)
  default_trials : int;  (** when a request omits ["trials"] *)
  default_seed : int;  (** when a request omits ["seed"] *)
  fault : Suu_service.Fault.spec;  (** coordinator-side injection ([kill]) *)
  tracer : Suu_obs.Trace.t;  (** route/dispatch/merge spans *)
}

val default_config : config
(** 2 shards, 64 replicas, split at 64 trials with auto chunking, 4
    sub-jobs in flight per shard, 2 retries at 1 ms base backoff,
    100 ms heartbeat, 200 trials, seed 1, no faults, tracing off. *)

type report = {
  metrics : Suu_service.Metrics.snapshot;
      (** the coordinator's own request accounting; [retries] counts
          re-dispatches after shard loss *)
  shards : int;
  shards_live : int;  (** live when shutdown began *)
  forwards : int;  (** whole requests routed to a shard *)
  splits : int;  (** requests split into sub-jobs *)
  subjobs : int;  (** sub-jobs dispatched (excluding re-dispatches) *)
  shard_deaths : int;
  heartbeats : int;  (** pings sent *)
}

val report_to_string : report -> string

val serve :
  config ->
  spawn:(int -> Client.t) ->
  (module Suu_service.Service.TRANSPORT) ->
  report
(** Spawn [shards] clients via [spawn], serve the transport until its
    input is exhausted, drain every outstanding response, then shut the
    fleet down gracefully (EOF, drain, join) and report. [spawn] decides
    the worker flavour: {!Client.process} for real worker processes (the
    CLI), {!Client.local} for in-process workers (tests, benchmarks). *)

val run_lines :
  config -> spawn:(int -> Client.t) -> string list -> string list * report
(** [serve] over an in-memory transport: feed request lines, collect
    response lines (in request order). For tests and benchmarks. *)
