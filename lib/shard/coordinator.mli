(** The sharding coordinator: one process speaking the service's
    line-JSON protocol on its transport, fronting a fleet of worker
    shards (each an ordinary {!Suu_service.Service} over its own pipe
    or socket).

    {2 Routing}

    Whole requests are routed by consistent hashing on the request's
    canonical cache key ({!Suu_service.Request.cache_key}): equal keys
    always reach the same shard, so each shard's LRU cache stays hot on
    its slice of the keyspace and the fleet's effective cache capacity
    is the {e sum} of the shards' — the capacity-scaling half of the
    sharding story. Keyless ops (info) round-robin over the live set.

    {2 Splitting}

    A Monte-Carlo request with at least [split_threshold] trials is
    split into contiguous trial-range sub-jobs ({!Dispatch.plan}, the
    wire's ["range":[lo,hi]]) fed through a job queue that keeps at most
    [sub_inflight] sub-jobs outstanding per shard. Because the engine
    seeds each trial independently of its neighbours, the concatenated
    partial samples are the unsplit run's sample vector, and the merged
    response ({!Merge.merged_fields}) is {e byte-identical} to the
    single-process answer — certified by the [split-merge] and
    [shard-heal] conformance properties and the shard test suite.

    {2 Failure model and self-healing}

    Worker loss surfaces as EOF on the shard's pipe (or a TCP client
    whose reconnect budget ran out), as a failed submit, or as
    [dead_after] consecutive missed heartbeats — whichever is observed
    first. The loss is routed through the {!Supervisor}: the slot is
    {e fenced} (its epoch bumped), every request or sub-job in flight
    there is reclaimed by ticket and re-dispatched to survivors (up to
    [retries] times each with capped deterministic backoff), and the
    zombie's late answers — arriving after the fence — find their
    tickets gone and are discarded (counted as [fenced]). With
    [respawn_budget > 0] the supervisor then respawns the shard after a
    capped-exponential deterministically-jittered delay; the rejoined
    shard re-enters the ring and the least-loaded pool at its new epoch
    immediately (its cache restarts cold, its counters at zero — the
    merge layer tolerates both). [respawn_budget = 0] preserves the
    degrade-only fleet: requests answer [reason:"shard_lost"]
    ([reason:"unavailable"] once no shard remains and recovery is
    impossible); while a respawn is still possible, work waits instead
    of failing. Every admitted request is answered exactly once and
    responses leave in request order — the same contract as a single
    service. Worker loss is injectable deterministically through the
    fault spec's [kill] rate ({!Suu_service.Fault.Kill}), keyed by the
    coordinator's dispatch counter.

    {2 Telemetry}

    [stats] requests are answered by the coordinator: it pulls raw
    stats from every live shard and merges them — counters summed
    ({!Suu_obs.Counters.merge_snapshots}), latency histograms merged
    bucket-wise ({!Suu_obs.Histogram.merge}) — into one response, or for
    [format:"prom"] one Prometheus exposition with the coordinator's own
    counters under [suu_coord_*], the fleet's under [suu_shard_*], and
    the supervision series: [suu_shard_respawns_total],
    [suu_coord_suspect_transitions_total],
    [suu_coord_fenced_replies_total] and the per-shard
    [suu_shard_epoch{shard="i"}] gauge. [ping] is answered locally with
    shard liveness attached. Route, dispatch and merge phases record
    spans when [tracer] is enabled. *)

type config = {
  shards : int;  (** worker shards to spawn (>= 1) *)
  replicas : int;  (** ring virtual nodes per shard *)
  split_threshold : int;
      (** split Monte-Carlo requests with at least this many trials;
          [0] disables splitting (everything forwards whole) *)
  chunk_trials : int;
      (** trials per sub-job; [0] picks {!Dispatch.auto_chunk} *)
  sub_inflight : int;  (** outstanding sub-jobs per shard (>= 1) *)
  retries : int;  (** re-dispatches per request or sub-job after shard loss *)
  retry_backoff_ms : float;  (** re-dispatch backoff base (capped at 50 ms) *)
  heartbeat_ms : float option;  (** ping period; [None] disables *)
  suspect_after : int;
      (** consecutive missed beats before a shard turns suspect *)
  dead_after : int;
      (** consecutive missed beats before a shard is declared dead
          (>= [suspect_after]) *)
  respawn_budget : int;
      (** respawn attempts per shard; [0] = degrade-only (PR-6
          behaviour) *)
  respawn_backoff_ms : float;
      (** respawn delay base, capped exponential with deterministic
          jitter *)
  default_trials : int;  (** when a request omits ["trials"] *)
  default_seed : int;  (** when a request omits ["seed"] *)
  default_ci_target : float option;
      (** when a request omits ["ci_target"]; [None] = exhaustive.
          Affects split routing only through the sub-job lines it
          re-encodes — whole forwards carry the client's line verbatim,
          so shards spawned by the CLI get the same default on their
          command line *)
  fault : Suu_service.Fault.spec;  (** coordinator-side injection ([kill]) *)
  tracer : Suu_obs.Trace.t;  (** route/dispatch/merge spans *)
}

val default_config : config
(** 2 shards, 64 replicas, split at 64 trials with auto chunking, 4
    sub-jobs in flight per shard, 2 retries at 1 ms base backoff,
    100 ms heartbeat (suspect after 1 miss, dead after 3), respawn
    budget 2 at 10 ms base backoff, 200 trials, seed 1, no faults,
    tracing off. *)

type report = {
  metrics : Suu_service.Metrics.snapshot;
      (** the coordinator's own request accounting; [retries] counts
          re-dispatches after shard loss *)
  shards : int;
  shards_live : int;  (** live when shutdown (post-heal) completed *)
  forwards : int;  (** whole requests routed to a shard *)
  splits : int;  (** requests split into sub-jobs *)
  subjobs : int;  (** sub-jobs dispatched (excluding re-dispatches) *)
  shard_deaths : int;  (** death events (a respawned shard can die again) *)
  heartbeats : int;  (** pings sent *)
  respawns : int;  (** successful respawns *)
  suspects : int;  (** healthy-to-suspect transitions *)
  fenced : int;  (** zombie answers discarded at the fence *)
}

val report_to_string : report -> string

val serve :
  config ->
  spawn:(int -> Client.t) ->
  (module Suu_service.Service.TRANSPORT) ->
  report
(** Spawn [shards] clients via [spawn] (retained by the supervisor for
    respawns), serve the transport until its input is exhausted, drain
    every outstanding response, wait for any in-flight healing to
    settle, then shut the fleet down gracefully (EOF, drain, join —
    zombies included) and report. [spawn] decides the worker flavour:
    {!Client.process} or {!Client.tcp_process} for real worker
    processes (the CLI), {!Client.local} or {!Client.tcp} for
    in-process or in-test workers. *)

val run_lines :
  config -> spawn:(int -> Client.t) -> string list -> string list * report
(** [serve] over an in-memory transport: feed request lines, collect
    response lines (in request order). For tests and benchmarks. *)
