module Rng = Suu_prob.Rng
module Dgen = Suu_dag.Gen

type sizes = {
  min_jobs : int;
  max_jobs : int;
  min_machines : int;
  max_machines : int;
  independent_only : bool;
  min_prob : float;
}

let default =
  {
    min_jobs = 1;
    max_jobs = 12;
    min_machines = 1;
    max_machines = 4;
    independent_only = false;
    min_prob = 0.;
  }

let small = { default with max_jobs = 6; max_machines = 3 }
let tiny = { default with max_jobs = 4; max_machines = 2 }

let range rng lo hi = lo + Rng.int rng (hi - lo + 1)

(* Probability styles. Every style fills a full m×n matrix; capability
   repair afterwards guarantees validity. *)
let fill_probs rng sizes ~m ~n =
  let clamp v = if v > 0. && v < sizes.min_prob then sizes.min_prob else v in
  let entry =
    match Rng.int rng 6 with
    | 0 -> fun () -> Rng.float rng (* uniform *)
    | 1 ->
        (* power-law: concentrated near 0, the hard regime for mass
           arguments *)
        fun () ->
         let u = Rng.float rng in
         u *. u *. u
    | 2 -> fun () -> Rng.uniform rng 0.5 1. (* dense high *)
    | 3 ->
        (* sparse: most pairs incapable *)
        fun () -> if Rng.float rng < 0.6 then 0. else Rng.float rng
    | 4 ->
        (* degenerate masses: p ∈ {0,1} only *)
        fun () -> if Rng.bool rng then 1. else 0.
    | _ ->
        (* mixed: degenerate entries sprinkled into a uniform matrix *)
        fun () ->
         (match Rng.int rng 4 with
         | 0 -> 0.
         | 1 -> 1.
         | _ -> Rng.float rng)
  in
  let p = Array.init m (fun _ -> Array.init n (fun _ -> clamp (entry ()))) in
  (* Capability repair: every job needs a machine with positive
     probability or the instance (rightly) refuses to build. *)
  for j = 0 to n - 1 do
    let capable = ref false in
    for i = 0 to m - 1 do
      if p.(i).(j) > 0. then capable := true
    done;
    if not !capable then begin
      let i = Rng.int rng m in
      p.(i).(j) <-
        (if Rng.bool rng then 1. else clamp (Rng.uniform rng 0.25 1.))
    end
  done;
  p

let gen_dag rng sizes ~n =
  if sizes.independent_only || n = 1 then Dgen.independent n
  else
    match Rng.int rng 8 with
    | 0 -> Dgen.independent n
    | 1 -> Dgen.chains rng ~n ~chains:(range rng 1 n)
    | 2 -> Dgen.out_forest rng ~n ~trees:(range rng 1 n)
    | 3 -> Dgen.in_forest rng ~n ~trees:(range rng 1 n)
    | 4 -> Dgen.polytree_forest rng ~n ~trees:(range rng 1 n)
    | 5 -> Dgen.layered rng ~n ~layers:(range rng 1 n) ~edge_prob:(Rng.float rng)
    | 6 -> Dgen.random_dag rng ~n ~edge_prob:0.15
    | _ -> Dgen.random_dag rng ~n ~edge_prob:0.5

let case rng sizes =
  let n = range rng sizes.min_jobs sizes.max_jobs in
  let m = range rng sizes.min_machines sizes.max_machines in
  let dag = gen_dag rng sizes ~n in
  let p = fill_probs rng sizes ~m ~n in
  Case.make ~p ~edges:(Suu_dag.Dag.edges dag) ~aux_seed:(Rng.int rng 1_000_000)

let oblivious rng c =
  let n = Case.n c and m = Case.m c in
  let assignment () =
    Array.init m (fun _ ->
        if Rng.float rng < 0.15 then Suu_core.Assignment.idle_job
        else Rng.int rng n)
  in
  let prefix = Array.init (Rng.int rng 5) (fun _ -> assignment ()) in
  let cycle = Array.init (range rng 1 6) (fun _ -> assignment ()) in
  Suu_core.Oblivious.create ~m ~cycle prefix

(* --- shrinking ---------------------------------------------------- *)

let drop_job c j =
  let n = Case.n c in
  let remap v = if v > j then v - 1 else v in
  let p =
    Array.map
      (fun row -> Array.init (n - 1) (fun k -> row.(if k >= j then k + 1 else k)))
      c.Case.p
  in
  let edges =
    List.filter_map
      (fun (u, v) ->
        if u = j || v = j then None else Some (remap u, remap v))
      c.Case.edges
  in
  Case.make ~p ~edges ~aux_seed:c.Case.aux_seed

let drop_machine c i =
  let p =
    Array.init
      (Case.m c - 1)
      (fun k -> Array.copy c.Case.p.(if k >= i then k + 1 else k))
  in
  Case.make ~p ~edges:c.Case.edges ~aux_seed:c.Case.aux_seed

let drop_edge c e =
  Case.make ~p:(Array.map Array.copy c.Case.p)
    ~edges:(List.filter (fun e' -> e' <> e) c.Case.edges)
    ~aux_seed:c.Case.aux_seed

let set_prob c i j v =
  let p = Array.map Array.copy c.Case.p in
  p.(i).(j) <- v;
  Case.make ~p ~edges:c.Case.edges ~aux_seed:c.Case.aux_seed

let round2 v = Float.round (v *. 100.) /. 100.

let shrink c =
  let n = Case.n c and m = Case.m c in
  let jobs =
    if n <= 1 then []
    else List.init n (fun j () -> drop_job c j)
  in
  let machines =
    if m <= 1 then []
    else List.init m (fun i () -> drop_machine c i)
  in
  let edges = List.map (fun e () -> drop_edge c e) c.Case.edges in
  let probs = ref [] in
  for i = m - 1 downto 0 do
    for j = n - 1 downto 0 do
      let v = c.Case.p.(i).(j) in
      if v <> 0. && v <> 1. then begin
        (* simplest first: snap to an endpoint, then to two decimals *)
        probs := (fun () -> set_prob c i j 0.) :: !probs;
        probs := (fun () -> set_prob c i j 1.) :: !probs;
        let r = round2 v in
        if r <> v && r <> 0. && r <> 1. then
          probs := (fun () -> set_prob c i j r) :: !probs
      end
    done
  done;
  let aux =
    if c.Case.aux_seed = 0 then []
    else
      [
        (fun () ->
          Case.make ~p:(Array.map Array.copy c.Case.p) ~edges:c.Case.edges
            ~aux_seed:0);
      ]
  in
  List.concat [ jobs; machines; edges; !probs; aux ]
  |> List.to_seq
  |> Seq.map (fun f -> f ())
  |> Seq.filter Case.is_valid
