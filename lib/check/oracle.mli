(** Cross-cutting oracle helpers shared by the property registry.

    The exhaustive optima themselves live next to the algorithms they
    certify ({!Suu_algo.Msm.optimal_mass_brute_force},
    {!Suu_algo.Msm_ext.optimal_mass_brute_force},
    {!Suu_algo.Malewicz.optimal_value}, {!Suu_sim.Exact}); this module
    supplies the glue: eligibility computation matching the engine's
    semantics, the canonical MSM regimen both the exact chain and the
    Monte-Carlo engine can execute, and empirical-CDF machinery with the
    Dvoretzky–Kiefer–Wolfowitz tolerance used to certify distribution
    equivalence. *)

val eligible : Suu_core.Instance.t -> bool array -> bool array
(** Jobs of the unfinished set whose predecessors are all finished — the
    engine's per-step eligibility rule as a pure function. *)

val msm_regimen :
  Suu_core.Instance.t -> bool array -> Suu_core.Assignment.t
(** The SUU-I regimen: MSM-ALG on the eligible subset of the given
    unfinished set. Suitable both for
    {!Suu_sim.Exact.expected_makespan_regimen} and (wrapped with
    {!Suu_core.Policy.of_regimen}) for the Monte-Carlo estimators, which
    is what makes exact-vs-MC agreement a well-posed oracle. *)

val empirical_cdf : Suu_sim.Engine.estimate -> horizon:int -> float array
(** [P̂(T ≤ t)] for [t = 0..horizon] from an estimate run with
    [max_steps = horizon]: truncated trials count as [T > horizon], so
    the empirical CDF is comparable to an exact CDF even when the
    schedule cannot finish. *)

val sup_distance : float array -> float array -> float
(** Kolmogorov–Smirnov statistic [sup_t |a.(t) − b.(t)|] over the common
    prefix of the two arrays. *)

val dkw_epsilon : trials:int -> delta:float -> float
(** The DKW bound: with probability at least [1 − delta] the empirical
    CDF of [trials] iid samples is uniformly within
    [sqrt (ln (2/delta) / (2 · trials))] of the true CDF. *)
