module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Policy = Suu_core.Policy
module Oblivious = Suu_core.Oblivious
module Mass = Suu_core.Mass
module Msm = Suu_algo.Msm
module Msm_ext = Suu_algo.Msm_ext
module Weighted_msm = Suu_algo.Weighted_msm
module Suu_i = Suu_algo.Suu_i
module Suu_i_obl = Suu_algo.Suu_i_obl
module Phased = Suu_algo.Phased
module Improved = Suu_algo.Improved
module Malewicz = Suu_algo.Malewicz
module Lzf = Suu_algo.Lzf
module Fixed_assignment = Suu_algo.Fixed_assignment
module Churn = Suu_dyn.Churn
module Engine = Suu_sim.Engine
module Exec_trace = Suu_obs.Exec_trace
module Exact = Suu_sim.Exact
module Exact_oblivious = Suu_sim.Exact_oblivious
module Io = Suu_harness.Io
module Rng = Suu_prob.Rng
open Property

let hostile_values =
  [| 1.5; -0.1; Float.nan; Float.infinity; Float.neg_infinity; 2.; -1e300 |]

(* A random "unfinished jobs" subset drawn from the case's auxiliary
   stream; never empty unless [n = 0]. *)
let random_jobs rng n =
  let jobs = Array.init n (fun _ -> Rng.float rng < 0.7) in
  if n > 0 && not (Array.exists Fun.id jobs) then jobs.(Rng.int rng n) <- true;
  jobs

let same_assignment (a : Assignment.t) (b : Assignment.t) = a = b

(* --- 1. typed validation ------------------------------------------- *)

let instance_validation =
  Property.make ~name:"instance-validation" ~sizes:Gen.small
    ~doc:
      "hostile probabilities (NaN, infinities, out of [0,1]) are rejected \
       with a typed error naming the offending coordinates, and never reach \
       the samplers" (fun case ->
      let rng = Case.aux_rng case in
      let dag = Suu_dag.Dag.create ~n:(Case.n case) case.Case.edges in
      match Instance.create_checked ~p:case.Case.p ~dag with
      | Error e -> failf "valid case rejected: %s" (Instance.error_to_string e)
      | Ok _ ->
          let bad = ref None in
          for _ = 1 to 3 do
            let i = Rng.int rng (Case.m case)
            and j = Rng.int rng (Case.n case) in
            let v = hostile_values.(Rng.int rng (Array.length hostile_values)) in
            let p = Array.map Array.copy case.Case.p in
            p.(i).(j) <- v;
            (match Instance.create_checked ~p ~dag with
            | Error (Instance.Bad_probability { machine; job; value })
              when machine = i && job = j
                   && Int64.equal (Int64.bits_of_float value)
                        (Int64.bits_of_float v) ->
                ()
            | Error e ->
                bad :=
                  Some
                    (Printf.sprintf
                       "hostile p[%d][%d]=%h misreported as: %s" i j v
                       (Instance.error_to_string e))
            | Ok _ ->
                bad := Some (Printf.sprintf "hostile p[%d][%d]=%h accepted" i j v));
            (* The exception path must carry the same typed payload. *)
            match Instance.create ~p ~dag with
            | (_ : Instance.t) ->
                bad := Some (Printf.sprintf "create accepted hostile %h" v)
            | exception Instance.Invalid (Instance.Bad_probability _) -> ()
            | exception e ->
                bad :=
                  Some
                    (Printf.sprintf "create raised untyped %s for %h"
                       (Printexc.to_string e) v)
          done;
          (match !bad with
          | Some msg -> Fail msg
          | None -> (
              (* End to end: a NaN in an instance *file* must surface as the
                 structured parse failure the serving layer handles, not
                 escape as a raw exception. *)
              let txt = "suu 1\nn 1 m 1\nedges 0\nprobs\nnan\n" in
              match Io.of_string txt with
              | (_ : Instance.t) -> Fail "Io accepted a NaN probability"
              | exception Failure _ -> Pass
              | exception e ->
                  failf "Io raised %s instead of Failure" (Printexc.to_string e)
              )))

(* --- 2. MSM-ALG 1/3 ratio (Theorem 3.2) ---------------------------- *)

let msm_ratio =
  Property.make ~name:"msm-ratio"
    ~sizes:{ Gen.tiny with max_machines = 3 }
    ~doc:
      "greedy MSM-ALG mass is within 1/3 of the brute-force MaxSumMass \
       optimum, never exceeds it, caps per-job mass at 1 and only uses \
       flagged jobs" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let jobs = random_jobs rng (Instance.n inst) in
      let a = Msm.assign inst ~jobs in
      match Assignment.validate a ~n:(Instance.n inst) ~m:(Instance.m inst) with
      | Error msg -> failf "invalid assignment: %s" msg
      | Ok () -> (
          let off_target =
            Array.exists (fun j -> j <> Assignment.idle_job && not jobs.(j)) a
          in
          if off_target then Fail "machine assigned to an unflagged job"
          else
            let mass = Assignment.mass_added inst a in
            let overfull = Array.exists (fun mj -> mj > 1. +. 1e-9) mass in
            if overfull then Fail "per-job mass exceeds 1"
            else
              let greedy = Msm.total_mass inst a in
              match Msm.optimal_mass_brute_force inst ~jobs with
              | exception Invalid_argument _ -> Skip "search space too large"
              | opt ->
                  if greedy > opt +. 1e-9 then
                    failf "greedy %.6f exceeds optimum %.6f" greedy opt
                  else if greedy < (opt /. 3.) -. 1e-9 then
                    failf "greedy %.6f < OPT/3 = %.6f (Thm 3.2 violated)"
                      greedy (opt /. 3.)
                  else Pass))

(* --- 3. MSM-E-ALG 1/3 ratio (Lemma 3.4) ---------------------------- *)

let msm_ext_ratio =
  Property.make ~name:"msm-ext-ratio"
    ~sizes:{ Gen.tiny with max_jobs = 3 }
    ~doc:
      "MSM-E-ALG's length-t allocation respects machine capacities, keeps \
       its mass ledger consistent, packs into a valid schedule, and is \
       within 1/3 of the brute-force MaxSumMass-Ext optimum" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let t = Rng.int rng 5 in
      let jobs = random_jobs rng (Instance.n inst) in
      let r = Msm_ext.allocate inst ~jobs ~t in
      let cap_ok =
        Array.for_all
          (fun row -> Array.fold_left ( + ) 0 row <= t)
          r.Msm_ext.x
      in
      if not cap_ok then Fail "machine allocated more than t steps"
      else
        let ledger_ok =
          Array.for_all Fun.id
            (Array.init (Instance.n inst) (fun j ->
                 let s = ref 0. in
                 Array.iteri
                   (fun i row ->
                     s :=
                       !s
                       +. Float.of_int row.(j)
                          *. Instance.prob inst ~machine:i ~job:j)
                   r.Msm_ext.x;
                 Float.abs (!s -. r.Msm_ext.mass.(j)) <= 1e-9))
        in
        if not ledger_ok then Fail "mass ledger disagrees with x"
        else
          match Oblivious.validate inst (Msm_ext.to_schedule inst r) with
          | Error msg -> failf "packed schedule invalid: %s" msg
          | Ok () -> (
              let greedy = Msm_ext.total_mass r in
              match Msm_ext.optimal_mass_brute_force inst ~jobs ~t with
              | exception Invalid_argument _ -> Skip "search space too large"
              | opt ->
                  if greedy > opt +. 1e-9 then
                    failf "greedy %.6f exceeds optimum %.6f" greedy opt
                  else if greedy < (opt /. 3.) -. 1e-9 then
                    failf "greedy %.6f < OPT/3 = %.6f (Lemma 3.4 violated)"
                      greedy (opt /. 3.)
                  else Pass))

(* --- 4. tie-break determinism -------------------------------------- *)

let msm_determinism =
  Property.make ~name:"msm-determinism"
    ~doc:
      "the greedy assignment is a pure function of the instance: repeated \
       calls, a rebuilt instance (fresh sorted_pairs), and the \
       weight-scaled greedy with uniform weights all agree exactly"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let n = Instance.n inst in
      let jobs = random_jobs rng n in
      let a1 = Msm.assign inst ~jobs in
      let a2 = Msm.assign inst ~jobs in
      if not (same_assignment a1 a2) then Fail "two calls disagree"
      else
        let rebuilt = Case.instance case in
        let a3 = Msm.assign rebuilt ~jobs in
        if not (same_assignment a1 a3) then
          Fail "rebuilt instance (fresh sorted_pairs) disagrees"
        else
          let ones = Array.make n 1. in
          let w1 = Weighted_msm.assign inst ~weights:ones ~jobs in
          if not (same_assignment a1 w1) then
            Fail "uniform-weight greedy diverges from MSM-ALG"
          else
            let scaled = Array.make n 2.5 in
            let w2 = Weighted_msm.assign inst ~weights:scaled ~jobs in
            let w2' = Weighted_msm.assign rebuilt ~weights:scaled ~jobs in
            if not (same_assignment w2 w2') then
              Fail "equal-weight assignment unstable across rebuilds"
            else if not (same_assignment w1 w2) then
              Fail "uniform weight scaling changed the assignment"
            else Pass)

(* --- 5. mass accumulation (Lemma 3.5 / Proposition 2.1) ------------ *)

let mass_accumulation =
  Property.make ~name:"mass-accumulation" ~sizes:Gen.small
    ~doc:
      "Algorithm 2's core schedule accumulates at least the target mass \
       for every job, mass grows monotonically in steps, and combined \
       success probability obeys Proposition 2.1's [Σ/e, Σ] sandwich"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let params = Suu_i_obl.tuned_params in
      let r = Suu_i_obl.build ~params inst in
      let core = r.Suu_i_obl.core in
      let steps = Oblivious.prefix_length core in
      let mass = Mass.of_oblivious_capped inst core ~steps in
      let target = params.Suu_i_obl.mass_target in
      let deficient = ref None in
      Array.iteri
        (fun j mj -> if mj < target -. 1e-9 then deficient := Some (j, mj))
        mass;
      match !deficient with
      | Some (j, mj) ->
          failf "job %d accumulates %.4f < target %.4f over the core" j mj
            target
      | None ->
          let half = Mass.of_oblivious inst core ~steps:(steps / 2) in
          let full = Mass.of_oblivious inst core ~steps in
          let shrunkk = ref None in
          Array.iteri
            (fun j v -> if v > full.(j) +. 1e-9 then shrunkk := Some j)
            half;
          (match !shrunkk with
          | Some j -> failf "job %d loses mass as steps grow" j
          | None ->
              let k = 1 + Rng.int rng 4 in
              let ps =
                List.init k (fun _ -> Rng.uniform rng 0. (1. /. Float.of_int k))
              in
              let lo, hi = Mass.proposition_2_1_bounds ps in
              let c = Mass.combined_success ps in
              if c < lo -. 1e-12 then
                failf "combined success %.6f below Σ/e = %.6f" c lo
              else if c > hi +. 1e-12 then
                failf "combined success %.6f above Σ = %.6f" c hi
              else Pass))

(* --- 6. relabeling invariance -------------------------------------- *)

let permuted_case rng case =
  let n = Case.n case and m = Case.m case in
  let sigma = Rng.permutation rng m in
  let pi = Rng.permutation rng n in
  let inv = Array.make n 0 in
  Array.iteri (fun j old -> inv.(old) <- j) pi;
  let p =
    Array.init m (fun i -> Array.init n (fun j -> case.Case.p.(sigma.(i)).(pi.(j))))
  in
  let edges = List.map (fun (u, v) -> (inv.(u), inv.(v))) case.Case.edges in
  Case.make ~p ~edges ~aux_seed:case.Case.aux_seed

let relabel_invariance =
  Property.make ~name:"relabel-invariance" ~sizes:Gen.tiny
    ~doc:
      "optimal values are label-free: brute-force MaxSumMass and the \
       Malewicz optimum are invariant under permuting machines and jobs"
    (fun case ->
      let rng = Case.aux_rng case in
      let inst = Case.instance case in
      let perm = permuted_case rng case in
      let inst' = Case.instance perm in
      let all_jobs = Array.make (Instance.n inst) true in
      match
        ( Msm.optimal_mass_brute_force inst ~jobs:all_jobs,
          Msm.optimal_mass_brute_force inst' ~jobs:all_jobs )
      with
      | exception Invalid_argument _ -> Skip "search space too large"
      | opt, opt' ->
          if Float.abs (opt -. opt') > 1e-9 then
            failf "MaxSumMass optimum moved under relabeling: %.9f vs %.9f"
              opt opt'
          else (
            match (Malewicz.optimal_value inst, Malewicz.optimal_value inst')
            with
            | exception Malewicz.Too_expensive _ -> Skip "Malewicz too expensive"
            | exception Exact.Too_large _ -> Skip "too many jobs for a bitmask"
            | v, v' ->
                let tol = 1e-6 *. (1. +. Float.abs v) in
                if Float.abs (v -. v') > tol then
                  failf "TOPT moved under relabeling: %.9f vs %.9f" v v'
                else Pass))

(* --- 7. monotonicity in p ------------------------------------------ *)

let monotone_in_p =
  Property.make ~name:"monotone-in-p" ~sizes:Gen.tiny
    ~doc:
      "raising success probabilities can only help: TOPT (Malewicz \
       optimum) weakly decreases when any subset of the p_ij grows"
    (fun case ->
      let rng = Case.aux_rng case in
      let inst = Case.instance case in
      let boosted =
        Array.map
          (Array.map (fun v ->
               if Rng.bool rng then v +. ((1. -. v) *. Rng.float rng) else v))
          case.Case.p
      in
      let inst' =
        Instance.create ~p:boosted
          ~dag:(Suu_dag.Dag.create ~n:(Case.n case) case.Case.edges)
      in
      match (Malewicz.optimal_value inst, Malewicz.optimal_value inst') with
      | exception Malewicz.Too_expensive _ -> Skip "Malewicz too expensive"
      | exception Exact.Too_large _ -> Skip "too many jobs for a bitmask"
      | v, v' ->
          let tol = 1e-6 *. (1. +. Float.abs v) in
          if v' > v +. tol then
            failf "TOPT grew from %.9f to %.9f after boosting p" v v'
          else Pass)

(* --- 8. exact chain vs Monte-Carlo --------------------------------- *)

let exact_vs_mc =
  Property.make ~name:"exact-vs-mc"
    ~sizes:{ Gen.small with min_prob = 0.1 }
    ~doc:
      "the Monte-Carlo engine agrees with the absorbing-Markov-chain \
       expectation of the MSM regimen within 5 standard errors"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      match Exact.expected_makespan_regimen inst (Oracle.msm_regimen inst) with
      | exception Exact.Too_large _ -> Skip "too many jobs for a bitmask"
      | exact ->
          let trials = 400 in
          let policy = Policy.of_regimen "msm-regimen" (Oracle.msm_regimen inst) in
          let e =
            Engine.estimate_makespan_seeded ~trials ~seed:(Rng.int rng 1_000_000)
              inst policy
          in
          if e.Engine.incomplete > 0 then
            failf "%d of %d trials hit the step cap" e.Engine.incomplete trials
          else
            let mean = e.Engine.stats.Suu_prob.Stats.mean in
            let sem = e.Engine.stats.Suu_prob.Stats.sem in
            let tol = (5. *. sem) +. 0.05 in
            if Float.abs (mean -. exact) > tol then
              failf "MC mean %.4f vs exact %.4f (tol %.4f over %d trials)"
                mean exact tol trials
            else Pass)

(* --- 9. leapfrog vs naive stepper ---------------------------------- *)

let leapfrog_vs_naive =
  Property.make ~name:"leapfrog-vs-naive"
    ~sizes:{ Gen.small with max_jobs = 5; min_prob = 0.15 }
    ~doc:
      "on a random oblivious schedule, both the geometric leapfrog sampler \
       and the naive unit stepper match the exact makespan CDF uniformly \
       (DKW at confidence 1 − 1e-9)"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let sched = Gen.oblivious rng case in
      let horizon = min (Engine.default_horizon inst) 300 in
      let exact = Exact_oblivious.cdf inst sched ~horizon in
      let sampler name policy trials =
        let e =
          Engine.estimate_makespan_seeded ~max_steps:horizon ~trials
            ~seed:(Rng.int rng 1_000_000) inst policy
        in
        let emp = Oracle.empirical_cdf e ~horizon in
        let sup = Oracle.sup_distance emp exact in
        let eps = Oracle.dkw_epsilon ~trials ~delta:1e-9 in
        if sup > eps then
          Some
            (Printf.sprintf "%s sampler: sup|emp − exact| = %.4f > %.4f" name
               sup eps)
        else None
      in
      let leap = Policy.of_oblivious "leap" sched in
      let naive =
        Policy.stateless "naive" (fun state ->
            Oblivious.step sched state.Policy.step)
      in
      match sampler "leapfrog" leap 3000 with
      | Some msg -> Fail msg
      | None -> (
          match sampler "naive" naive 1200 with
          | Some msg -> Fail msg
          | None -> Pass))

(* --- 9b. vectorized trial-lane kernel conformance ------------------ *)

let lanes_vs_exact =
  Property.make ~name:"lanes-vs-exact"
    ~sizes:{ Gen.small with max_jobs = 5; min_prob = 0.15 }
    ~doc:
      "the trial-batched vectorized kernel (which estimate_makespan routes \
       structurally-tagged policies through) matches the exact makespan CDF \
       uniformly (DKW at confidence 1 − 1e-9) for both vectorizable shapes: \
       the greedy pair scan against the Markov-chain regimen CDF and a \
       random oblivious schedule against the schedule CDF"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let horizon = min (Engine.default_horizon inst) 300 in
      let trials = 3000 in
      let sampler name policy exact =
        let e =
          Engine.estimate_makespan ~max_steps:horizon ~trials
            (Rng.create (Rng.int rng 1_000_000))
            inst policy
        in
        let emp = Oracle.empirical_cdf e ~horizon in
        let sup = Oracle.sup_distance emp exact in
        let eps = Oracle.dkw_epsilon ~trials ~delta:1e-9 in
        if sup > eps then
          Some
            (Printf.sprintf "%s kernel: sup|emp − exact| = %.4f > %.4f" name
               sup eps)
        else None
      in
      match
        Exact.makespan_distribution_regimen inst (Oracle.msm_regimen inst)
          ~horizon
      with
      | exception Exact.Too_large _ -> Skip "too many jobs for a bitmask"
      | exception Exact.Nonterminating -> Skip "regimen cannot terminate"
      | greedy_exact -> (
          match sampler "greedy" (Suu_i.policy inst) greedy_exact with
          | Some msg -> Fail msg
          | None -> (
              let sched = Gen.oblivious rng case in
              let exact = Exact_oblivious.cdf inst sched ~horizon in
              let obl = Policy.of_oblivious "lanes-obl" sched in
              match sampler "oblivious" obl exact with
              | Some msg -> Fail msg
              | None -> Pass)))

(* --- 10. parallel estimator identity ------------------------------- *)

let parallel_vs_seeded =
  Property.make ~name:"parallel-vs-seeded"
    ~sizes:{ Gen.default with min_prob = 0.05 }
    ~doc:
      "the multicore estimator is bit-identical to the sequential seeded \
       one (and the seeded one to itself) for adaptive and oblivious \
       policies alike" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let policy =
        if case.Case.aux_seed mod 2 = 0 then Suu_i.policy inst
        else Policy.of_oblivious "suu-i-obl" (Suu_i_obl.schedule inst)
      in
      let seed = Rng.int rng 1_000_000 in
      let trials = 48 in
      let a = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
      let b =
        Engine.estimate_makespan_parallel ~domains:3 ~trials ~seed inst policy
      in
      let c = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
      let bits e = Array.map Int64.bits_of_float e.Engine.samples in
      if bits a <> bits b then Fail "parallel samples differ from seeded"
      else if a.Engine.incomplete <> b.Engine.incomplete then
        Fail "parallel incomplete count differs from seeded"
      else if bits a <> bits c then Fail "seeded estimator is not reproducible"
      else Pass)

(* --- 11. serialisation round-trips --------------------------------- *)

let serialize_roundtrip =
  Property.make ~name:"serialize-roundtrip"
    ~doc:
      "instance files, plan files and case repro JSON all round-trip \
       losslessly (equal digests, bit-equal probabilities, identical \
       schedules)" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let s = Io.to_string inst in
      match Io.of_string s with
      | exception Failure msg -> failf "reparse failed: %s" msg
      | inst2 ->
          if not (String.equal (Io.digest inst) (Io.digest inst2)) then
            Fail "digest changed across a round-trip"
          else if not (String.equal (Io.to_string inst2) s) then
            Fail "serialisation is not idempotent"
          else if
            not
              (List.sort compare (Suu_dag.Dag.edges (Instance.dag inst2))
              = List.sort compare case.Case.edges)
          then Fail "edges changed across a round-trip"
          else
            let probs_ok = ref true in
            for i = 0 to Instance.m inst - 1 do
              for j = 0 to Instance.n inst - 1 do
                let x = Instance.prob inst ~machine:i ~job:j in
                let y = Instance.prob inst2 ~machine:i ~job:j in
                if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
                then probs_ok := false
              done
            done;
            if not !probs_ok then Fail "probabilities changed across a round-trip"
            else
              let sched = Gen.oblivious rng case in
              let sched2 =
                Io.schedule_of_string (Io.schedule_to_string sched)
              in
              if
                not
                  (sched.Oblivious.prefix = sched2.Oblivious.prefix
                  && sched.Oblivious.cycle = sched2.Oblivious.cycle
                  && sched.Oblivious.m = sched2.Oblivious.m)
              then Fail "plan file changed across a round-trip"
              else (
                match Case.of_json (Case.to_json case) with
                | Error msg -> failf "case JSON reparse failed: %s" msg
                | Ok case2 ->
                    if not (Case.equal case case2) then
                      Fail "case JSON round-trip is lossy"
                    else Pass))

(* --- 12. observer faithfulness (Definition 2.4 / Proposition 2.1) -- *)

let obs_mass_trace =
  Property.make ~name:"obs-mass-trace" ~sizes:Gen.small
    ~doc:
      "the engine's execution observer is faithful: observing leaves the \
       seeded estimate bit-identical, recorded assignments are the \
       schedule's own columns, the replayed mass trajectory matches \
       Definition 2.4 exactly, every job reaches Algorithm 2's target \
       mass within one core length, and per-step success obeys \
       Proposition 2.1's sandwich" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let n = Instance.n inst in
      let params = Suu_i_obl.tuned_params in
      let sched = Suu_i_obl.schedule ~params inst in
      let policy = Policy.of_oblivious "suu-i-obl" sched in
      let seed = Rng.int rng 1_000_000 in
      let trials = 6 in
      let observer, captured =
        Exec_trace.collector ~sample_every:2 ~limit:4096 ()
      in
      let a =
        Engine.estimate_makespan_seeded ~observer ~trials ~seed inst policy
      in
      let b = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
      let bits e = Array.map Int64.bits_of_float e.Engine.samples in
      if bits a <> bits b then Fail "observing perturbed the seeded estimate"
      else if a.Engine.incomplete <> b.Engine.incomplete then
        Fail "observing changed the truncation count"
      else
        let seen = captured () in
        let indexes = List.map (fun tr -> tr.Exec_trace.index) seen in
        if indexes <> [ 0; 2; 4 ] then
          failf "sample_every:2 over 6 trials captured trials {%s}"
            (String.concat "," (List.map string_of_int indexes))
        else
          let prob = Instance.prob inst in
          let core_len = Oblivious.cycle_length sched in
          let check_trial tr =
            let steps = tr.Exec_trace.steps in
            let len = List.length steps in
            (* Steps must be the contiguous 1-based prefix of the trial,
               and each recorded assignment the schedule's own column. *)
            List.iteri
              (fun i (st : Exec_trace.step) ->
                if st.Exec_trace.t <> i + 1 then
                  failwith
                    (Printf.sprintf "trial %d: step %d recorded as t=%d"
                       tr.Exec_trace.index (i + 1) st.Exec_trace.t);
                if
                  not
                    (same_assignment st.Exec_trace.assignment
                       (Oblivious.step sched (st.Exec_trace.t - 1)))
                then
                  failwith
                    (Printf.sprintf
                       "trial %d: recorded assignment at t=%d is not the \
                        schedule column"
                       tr.Exec_trace.index st.Exec_trace.t))
              steps;
            (if (not tr.Exec_trace.truncated) && len = tr.Exec_trace.makespan
             then
               (* A completed, fully recorded trial must complete every
                  job exactly once. *)
               let times = Array.make n 0 in
               List.iter
                 (fun (st : Exec_trace.step) ->
                   List.iter
                     (fun j -> times.(j) <- times.(j) + 1)
                     st.Exec_trace.completed)
                 steps;
               Array.iteri
                 (fun j k ->
                   if k <> 1 then
                     failwith
                       (Printf.sprintf
                          "trial %d: job %d completed %d times over a full \
                           recording"
                          tr.Exec_trace.index j k))
                 times);
            let traj = Exec_trace.mass_trajectory ~prob ~jobs:n tr in
            (* Cross-check the replayed accumulation against the Mass
               module (Definition 2.4) at the final recorded step. *)
            (match List.rev traj with
            | [] -> ()
            | (t_last, mass) :: _ ->
                let expect = Mass.of_oblivious_capped inst sched ~steps:t_last in
                Array.iteri
                  (fun j mj ->
                    if Float.abs (mj -. expect.(j)) > 1e-9 then
                      failwith
                        (Printf.sprintf
                           "trial %d: job %d replayed mass %.9f but \
                            Definition 2.4 gives %.9f at t=%d"
                           tr.Exec_trace.index j mj expect.(j) t_last))
                  mass;
                (* Lemma 3.5 accumulation bound, read off the capture:
                   once a core length has been recorded, every job has
                   accumulated at least the target mass. *)
                if t_last >= core_len then
                  List.iter
                    (fun (t, mass) ->
                      if t = core_len then
                        Array.iteri
                          (fun j mj ->
                            let want =
                              Float.min 1. params.Suu_i_obl.mass_target
                            in
                            if mj < want -. 1e-9 then
                              failwith
                                (Printf.sprintf
                                   "trial %d: job %d captured mass %.4f < \
                                    target %.4f after one core"
                                   tr.Exec_trace.index j mj want))
                          mass)
                    traj);
            (* Proposition 2.1 on the captured per-step attempts: each
               job's single-step success is sandwiched in [Σ/e, Σ]. *)
            List.iter
              (fun (st : Exec_trace.step) ->
                for j = 0 to n - 1 do
                  let ps = ref [] in
                  Array.iteri
                    (fun i j' ->
                      if j' = j then ps := prob ~machine:i ~job:j :: !ps)
                    st.Exec_trace.assignment;
                  if !ps <> [] then begin
                    let lo, hi = Mass.proposition_2_1_bounds !ps in
                    let c = Mass.combined_success !ps in
                    if c < lo -. 1e-12 || c > hi +. 1e-12 then
                      failwith
                        (Printf.sprintf
                           "trial %d t=%d job %d: success %.6f outside \
                            [%.6f, %.6f]"
                           tr.Exec_trace.index st.Exec_trace.t j c lo hi)
                  end
                done)
              steps
          in
          match List.iter check_trial seen with
          | () -> Pass
          | exception Failure msg -> Fail msg)

(* --- 13. trial-range splitting (the sharding coordinator's merge) -- *)

let split_merge =
  Property.make ~name:"split-merge"
    ~sizes:{ Gen.default with min_prob = 0.05 }
    ~doc:
      "a seeded estimate split into trial ranges and merged \
       (estimate_makespan_range + merge_ranges — the sharding \
       coordinator's fan-out) is bit-identical to the unsplit run: \
       samples, incomplete count, mean and ci95 all match for adaptive \
       and oblivious policies alike, at any split point" (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let policy =
        if case.Case.aux_seed mod 2 = 0 then Suu_i.policy inst
        else Policy.of_oblivious "suu-i-obl" (Suu_i_obl.schedule inst)
      in
      let seed = Rng.int rng 1_000_000 in
      let trials = 32 in
      let k = 1 + Rng.int rng (trials - 1) in
      let full = Engine.estimate_makespan_seeded ~trials ~seed inst policy in
      let max_steps = Engine.default_horizon inst in
      let lo_part = Engine.estimate_makespan_range ~seed ~lo:0 ~hi:k inst policy in
      let hi_part =
        Engine.estimate_makespan_range ~seed ~lo:k ~hi:trials inst policy
      in
      let merged = Engine.merge_ranges ~max_steps [ lo_part; hi_part ] in
      let bits e = Array.map Int64.bits_of_float e.Engine.samples in
      if bits merged <> bits full then
        failf "merged samples differ from the unsplit run (split at %d)" k
      else if merged.Engine.incomplete <> full.Engine.incomplete then
        Fail "merged incomplete count differs from the unsplit run"
      else if merged.Engine.trials <> full.Engine.trials then
        Fail "merged trial count differs from the unsplit run"
      else if
        not
          (Int64.equal
             (Int64.bits_of_float merged.Engine.stats.Suu_prob.Stats.mean)
             (Int64.bits_of_float full.Engine.stats.Suu_prob.Stats.mean))
      then Fail "merged mean is not bit-identical to the unsplit run"
      else if
        not
          (Int64.equal
             (Int64.bits_of_float merged.Engine.stats.Suu_prob.Stats.ci95)
             (Int64.bits_of_float full.Engine.stats.Suu_prob.Stats.ci95))
      then Fail "merged ci95 is not bit-identical to the unsplit run"
      else Pass)

(* --- 14. shard-heal (self-healing fleet, exactly-once merge) ------- *)

(* A repeat can hit its owning shard's cache where a single service
   misses (and a respawned worker restarts cold), so the cached flag is
   the one field byte-identity may scrub; every other byte must match. *)
let scrub_cached line =
  let needle = {|"cached":true|} in
  let n = String.length needle in
  let buf = Buffer.create (String.length line) in
  let i = ref 0 in
  while !i < String.length line do
    if !i + n <= String.length line && String.equal (String.sub line !i n) needle
    then begin
      Buffer.add_string buf {|"cached":false|};
      i := !i + n
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let shard_heal =
  Property.make ~name:"shard-heal"
    ~sizes:{ Gen.small with min_prob = 0.05 }
    ~doc:
      "a 2-shard coordinator under deterministic kill chaos (keyed by the \
       case seed) with a respawn budget answers every request ok, \
       byte-identical to a single service, and finishes at full strength \
       with every shard death matched by a respawn" (fun case ->
      let module Json = Suu_service.Json in
      let module Service = Suu_service.Service in
      let module Fault = Suu_service.Fault in
      let module Client = Suu_shard.Client in
      let module Coordinator = Suu_shard.Coordinator in
      let txt = Io.to_string (Case.instance case) in
      let solve ~trials ~seed id =
        Json.to_string
          (Json.Obj
             [
               ("op", Json.Str "solve");
               ("id", Json.Str id);
               ("algo", Json.Str "adaptive");
               ("trials", Json.int trials);
               ("seed", Json.int seed);
               ("instance", Json.Str txt);
             ])
      in
      let lines =
        [
          solve ~trials:24 ~seed:3 "a";
          (* above the split threshold: exercises sub-job re-dispatch *)
          solve ~trials:8 ~seed:1 "b";
          solve ~trials:24 ~seed:3 "a2";
          (* repeat of a: a shard cache hit, scrubbed below *)
          solve ~trials:8 ~seed:2 "c";
          solve ~trials:24 ~seed:9 "d";
          solve ~trials:8 ~seed:4 "e";
        ]
      in
      let worker_config =
        {
          Service.default_config with
          Service.workers = 1;
          queue_capacity = 64;
          cache_capacity = 16;
          default_trials = 8;
          default_seed = 1;
          default_deadline_ms = None;
          fault = Fault.none;
        }
      in
      let cfg =
        {
          Coordinator.default_config with
          Coordinator.shards = 2;
          split_threshold = 16;
          chunk_trials = 12;
          sub_inflight = 2;
          retries = 12;
          retry_backoff_ms = 0.1;
          heartbeat_ms = None;
          (* Every dispatch (including re-dispatches) can draw a kill, so
             total deaths are bounded by work items x (retries + 1) =
             9 x 13. Keeping the budget above that bound makes budget
             exhaustion impossible by construction: the property asserts
             full recovery on every seed, not on lucky ones. *)
          respawn_budget = 128;
          respawn_backoff_ms = 0.2;
          fault =
            {
              Fault.none with
              seed = 1 + (case.Case.aux_seed land 0xffff);
              (* Mild enough that a single work item exhausting its 12
                 re-dispatches (13 near-consecutive kill draws) has
                 negligible probability on any seed. *)
              kill = 0.1;
            };
        }
      in
      let spawn i = Client.local ~id:i worker_config in
      let single, _ = Service.run_lines worker_config lines in
      let sharded, report = Coordinator.run_lines cfg ~spawn lines in
      if List.length sharded <> List.length single then
        failf "answered %d of %d requests" (List.length sharded)
          (List.length single)
      else
        let mismatch =
          List.find_opt
            (fun (w, g) -> not (String.equal (scrub_cached w) (scrub_cached g)))
            (List.combine single sharded)
        in
        match mismatch with
        | Some (w, g) ->
            failf
              "healed fleet diverged from single service (%d deaths, %d \
               respawns, %d live):\n  %s\n  %s"
              report.Coordinator.shard_deaths report.Coordinator.respawns
              report.Coordinator.shards_live w g
        | None ->
            if
              report.Coordinator.metrics.Suu_service.Metrics.ok
              <> List.length lines
            then
              failf "%d of %d requests degraded under chaos"
                (List.length lines
                - report.Coordinator.metrics.Suu_service.Metrics.ok)
                (List.length lines)
            else if report.Coordinator.shards_live <> 2 then
              failf "fleet not at full strength: %d of 2 live"
                report.Coordinator.shards_live
            else if report.Coordinator.respawns <> report.Coordinator.shard_deaths
            then
              failf "%d deaths but %d respawns" report.Coordinator.shard_deaths
                report.Coordinator.respawns
            else Pass)

(* --- 15. improved-family schedule validity -------------------------- *)

let improved_validity =
  Property.make ~name:"improved-validity" ~sizes:Gen.small
    ~doc:
      "the improved family's schedule (suu-imp) is structurally valid on \
       every DAG shape, its boosted prefix alone brings every job to the \
       phase mass target, and every job keeps gaining mass over each \
       repetition of the tail (so the schedule finishes almost surely)"
    (fun case ->
      let inst = Case.instance case in
      let sched = Improved.schedule inst in
      match Oblivious.validate inst sched with
      | Error msg -> failf "invalid schedule: %s" msg
      | Ok () ->
          let n = Instance.n inst in
          let prefix_len = Oblivious.prefix_length sched in
          let cycle_len = Oblivious.cycle_length sched in
          if cycle_len = 0 && n > 0 then Fail "schedule has no infinite tail"
          else
            let target = Phased.tuned_params.Phased.mass_target in
            let prefix_mass =
              Mass.of_oblivious_capped inst sched ~steps:prefix_len
            in
            let deficient = ref None in
            Array.iteri
              (fun j mj ->
                if mj < Float.min 1. target -. 1e-9 then
                  deficient := Some (j, mj))
              prefix_mass;
            (match !deficient with
            | Some (j, mj) ->
                failf "job %d accumulates %.4f < target %.4f over the prefix"
                  j mj target
            | None ->
                (* Uncapped mass must strictly grow for every job over one
                   full tail repetition: both tails (base phase repeated,
                   concentration cycle) revisit every job. *)
                let at = Mass.of_oblivious inst sched ~steps:prefix_len in
                let later =
                  Mass.of_oblivious inst sched ~steps:(prefix_len + cycle_len)
                in
                let stuck = ref None in
                Array.iteri
                  (fun j v -> if later.(j) <= v +. 1e-12 then stuck := Some j)
                  at;
                (match !stuck with
                | Some j -> failf "job %d gains no mass over one tail cycle" j
                | None -> Pass)))

(* --- 16. improved-family ratio vs TOPT ------------------------------ *)

let improved_ratio =
  Property.make ~name:"improved-ratio" ~sizes:Gen.tiny
    ~doc:
      "the improved family's expected makespan stays within a pinned \
       envelope of the Malewicz optimum — C·(1 + log₂ n)·TOPT with C = 4, \
       generous against the follow-up paper's O(log n · log log min(m,n)) \
       DAG bound — and never beats TOPT by more than sampling noise"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      match Malewicz.optimal_value inst with
      | exception Malewicz.Too_expensive _ -> Skip "Malewicz too expensive"
      | exception Exact.Too_large _ -> Skip "too many jobs for a bitmask"
      | topt ->
          let trials = 300 in
          let e =
            Engine.estimate_makespan_seeded ~trials
              ~seed:(Rng.int rng 1_000_000) inst (Improved.policy inst)
          in
          if e.Engine.incomplete > 0 then
            failf "%d of %d trials hit the step cap" e.Engine.incomplete trials
          else
            let mean = e.Engine.stats.Suu_prob.Stats.mean in
            let sem = e.Engine.stats.Suu_prob.Stats.sem in
            let n = Instance.n inst in
            let envelope =
              4.
              *. (1. +. (Float.log (Float.of_int (max 2 n)) /. Float.log 2.))
              *. topt
            in
            if mean > envelope +. (5. *. sem) then
              failf "mean %.4f exceeds envelope %.4f (TOPT %.4f, n=%d)" mean
                envelope topt n
            else if mean < topt -. (5. *. sem) -. 0.05 then
              failf "mean %.4f beats TOPT %.4f — estimator or oracle broken"
                mean topt
            else Pass)

(* --- 17. index-policy family validity ------------------------------ *)

(* Replay a traced execution against the engine's own rules: every drawn
   (machine, job) pair must have positive probability on an unfinished,
   eligible job, and no job may collect more than the greedy mass cap in
   one step. [extra] adds a policy-specific per-pair invariant. *)
let replay_violation inst history ~extra =
  let n = Instance.n inst in
  let unfinished = Array.make n true in
  let mass = Array.make n 0. in
  let rec go = function
    | [] -> None
    | (step, asg, completed) :: rest -> (
        let elig = Oracle.eligible inst unfinished in
        Array.fill mass 0 n 0.;
        let bad = ref None in
        Array.iteri
          (fun i j ->
            if !bad = None && j <> Assignment.idle_job then
              let p = Instance.prob inst ~machine:i ~job:j in
              if p <= 0. then
                bad :=
                  Some
                    (Printf.sprintf
                       "step %d: machine %d drawn on job %d with p = 0" step i
                       j)
              else if not unfinished.(j) then
                bad :=
                  Some
                    (Printf.sprintf "step %d: machine %d on finished job %d"
                       step i j)
              else if not elig.(j) then
                bad :=
                  Some
                    (Printf.sprintf "step %d: machine %d on ineligible job %d"
                       step i j)
              else begin
                mass.(j) <- mass.(j) +. p;
                if mass.(j) > Policy.greedy_mass_cap then
                  bad :=
                    Some
                      (Printf.sprintf
                         "step %d: job %d collects mass %.6f over the cap"
                         step j mass.(j))
                else
                  match extra ~machine:i ~job:j with
                  | Some msg ->
                      bad := Some (Printf.sprintf "step %d: %s" step msg)
                  | None -> ()
              end)
          asg;
        match !bad with
        | Some _ as v -> v
        | None ->
            List.iter (fun j -> unfinished.(j) <- false) completed;
            go rest)
  in
  go history

let lzf_validity =
  Property.make ~name:"lzf-validity" ~sizes:Gen.small
    ~doc:
      "the Largest-Z-ratio-First index policy (suu-lzf) carries the greedy \
       structure tag, only ever draws positive-probability pairs on \
       unfinished eligible jobs within the greedy mass cap, and completes \
       every execution within the default horizon"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let policy = Lzf.policy inst in
      if policy.Policy.structure = Policy.General then
        Fail "suu-lzf carries no vectorizable structure tag"
      else
        let history = Engine.trace rng inst policy in
        match replay_violation inst history ~extra:(fun ~machine:_ ~job:_ -> None) with
        | Some msg -> Fail msg
        | None ->
            let outcome = Engine.run rng inst policy in
            if not outcome.Engine.completed then
              Fail "execution hit the default horizon"
            else Pass)

let fixed_validity =
  Property.make ~name:"fixed-validity" ~sizes:Gen.small
    ~doc:
      "the fixed-assignment policy (suu-fixed) pins every job to exactly one \
       positive-probability machine, its executions only ever run a job on \
       its pinned machine (eligible and unfinished), and they complete \
       within the default horizon"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let pinned = Fixed_assignment.assignment inst in
      let bad_pin = ref None in
      Array.iteri
        (fun j i ->
          if !bad_pin = None then
            if i < 0 || i >= Instance.m inst then
              bad_pin := Some (Printf.sprintf "job %d pinned to machine %d" j i)
            else if Instance.prob inst ~machine:i ~job:j <= 0. then
              bad_pin :=
                Some
                  (Printf.sprintf "job %d pinned to machine %d with p = 0" j i))
        pinned;
      match !bad_pin with
      | Some msg -> Fail msg
      | None -> (
          let policy = Fixed_assignment.policy inst in
          let history = Engine.trace rng inst policy in
          let extra ~machine ~job =
            if pinned.(job) <> machine then
              Some
                (Printf.sprintf "job %d ran on machine %d, pinned to %d" job
                   machine pinned.(job))
            else None
          in
          match replay_violation inst history ~extra with
          | Some msg -> Fail msg
          | None ->
              let outcome = Engine.run rng inst policy in
              if not outcome.Engine.completed then
                Fail "execution hit the default horizon"
              else Pass))

(* --- 18. machine-churn conformance --------------------------------- *)

let churn_timeline rng ~m ~rate ~perm =
  Churn.generate ~m
    {
      Churn.seed = Rng.int rng 1_000_000;
      rate;
      repair = 4;
      perm;
      steps = 64;
    }

let churn_mask =
  Property.make ~name:"churn-mask"
    ~sizes:{ Gen.small with max_jobs = 5; min_prob = 0.15 }
    ~doc:
      "executing a random oblivious schedule under a churn timeline agrees \
       with the exact makespan CDF of the Churn.mask'ed schedule uniformly \
       (DKW at confidence 1 − 1e-9), on both the gated naive stepper and \
       the estimators' masked leapfrog/vectorized fast path"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let sched = Gen.oblivious rng case in
      let churn = churn_timeline rng ~m:(Instance.m inst) ~rate:0.15 ~perm:0.02 in
      let masked = Churn.mask churn sched in
      let horizon = min (Engine.default_horizon inst) 300 in
      let exact = Exact_oblivious.cdf inst masked ~horizon in
      (* Gated stepper on the *original* schedule: the untagged stateless
         policy forces the naive path, so the per-step availability gate
         itself is what's under test. *)
      let naive =
        Policy.stateless "churn-naive" (fun state ->
            Oblivious.step sched state.Policy.step)
      in
      let check name policy trials =
        let e =
          Engine.estimate_makespan_seeded ~availability:churn
            ~max_steps:horizon ~trials ~seed:(Rng.int rng 1_000_000) inst
            policy
        in
        let emp = Oracle.empirical_cdf e ~horizon in
        let sup = Oracle.sup_distance emp exact in
        let eps = Oracle.dkw_epsilon ~trials ~delta:1e-9 in
        if sup > eps then
          Some
            (Printf.sprintf "%s: sup|emp − exact| = %.4f > %.4f" name sup eps)
        else None
      in
      match check "gated stepper" naive 1200 with
      | Some msg -> Fail msg
      | None -> (
          (* Tagged policy: the estimators mask the schedule at compile
             time and serve it at full leapfrog/vectorized speed. *)
          match check "masked fast path" (Policy.of_oblivious "churn-obl" sched) 1200 with
          | Some msg -> Fail msg
          | None -> Pass))

let churn_monotone =
  Property.make ~name:"churn-monotone"
    ~sizes:{ Gen.tiny with min_prob = 0.15 }
    ~doc:
      "more churn never helps: for nested timelines (one the union of the \
       other with extra outages), the exact makespan CDF of the \
       more-churned masked schedule is pointwise dominated by the \
       less-churned one — the monotone-coupling argument, checked without \
       sampling noise"
    (fun case ->
      let inst = Case.instance case in
      let rng = Case.aux_rng case in
      let sched = Gen.oblivious rng case in
      let m = Instance.m inst in
      let less = churn_timeline rng ~m ~rate:0.1 ~perm:0. in
      let more = Churn.union less (churn_timeline rng ~m ~rate:0.1 ~perm:0.05) in
      let horizon = min (Engine.default_horizon inst) 300 in
      let f_less = Exact_oblivious.cdf inst (Churn.mask less sched) ~horizon in
      let f_more = Exact_oblivious.cdf inst (Churn.mask more sched) ~horizon in
      let worst = ref (-1, 0.) in
      for t = 0 to min (Array.length f_less) (Array.length f_more) - 1 do
        let gap = f_more.(t) -. f_less.(t) in
        if gap > snd !worst then worst := (t, gap)
      done;
      let t, gap = !worst in
      if gap > 1e-9 then
        failf "P(T ≤ %d) grew by %.3e under strictly more churn" t gap
      else Pass)

(* --- hidden: the deliberately broken demo property ----------------- *)

let demo_broken =
  Property.make ~hidden:true ~name:"demo-broken" ~sizes:Gen.small
    ~doc:
      "every instance has at most two jobs — deliberately false, kept to \
       demonstrate (and test) the failure, shrinking and repro pipeline"
    (fun case ->
      let n = Case.n case in
      if n <= 2 then Pass else failf "instance has %d jobs > 2" n)

let all =
  [
    instance_validation;
    msm_ratio;
    msm_ext_ratio;
    msm_determinism;
    mass_accumulation;
    relabel_invariance;
    monotone_in_p;
    exact_vs_mc;
    leapfrog_vs_naive;
    lanes_vs_exact;
    parallel_vs_seeded;
    serialize_roundtrip;
    obs_mass_trace;
    split_merge;
    shard_heal;
    improved_validity;
    improved_ratio;
    lzf_validity;
    fixed_validity;
    churn_mask;
    churn_monotone;
    demo_broken;
  ]

let visible = List.filter (fun p -> not p.Property.hidden) all
let find name = List.find_opt (fun p -> String.equal p.Property.name name) all
