type outcome = Pass | Fail of string | Skip of string

type t = {
  name : string;
  doc : string;
  sizes : Gen.sizes;
  hidden : bool;
  check : Case.t -> outcome;
}

let make ?(hidden = false) ?(sizes = Gen.default) ~name ~doc check =
  { name; doc; sizes; hidden; check }

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt
let all cond label = if cond () then Pass else Fail label
