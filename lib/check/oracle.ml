module Instance = Suu_core.Instance
module Engine = Suu_sim.Engine

let eligible inst unfinished =
  let dag = Instance.dag inst in
  Array.mapi
    (fun j u ->
      u
      && List.for_all
           (fun pred -> not unfinished.(pred))
           (Suu_dag.Dag.preds dag j))
    unfinished

let msm_regimen inst unfinished =
  Suu_algo.Msm.assign inst ~jobs:(eligible inst unfinished)

let empirical_cdf (e : Engine.estimate) ~horizon =
  let counts = Array.make (horizon + 1) 0 in
  Array.iter
    (fun s ->
      let t = Float.to_int s in
      if t <= horizon then counts.(t) <- counts.(t) + 1)
    e.Engine.samples;
  let cdf = Array.make (horizon + 1) 0. in
  let acc = ref 0 in
  for t = 0 to horizon do
    acc := !acc + counts.(t);
    cdf.(t) <- Float.of_int !acc /. Float.of_int e.Engine.trials
  done;
  cdf

let sup_distance a b =
  let len = min (Array.length a) (Array.length b) in
  let sup = ref 0. in
  for t = 0 to len - 1 do
    let d = Float.abs (a.(t) -. b.(t)) in
    if d > !sup then sup := d
  done;
  !sup

let dkw_epsilon ~trials ~delta =
  sqrt (Float.log (2. /. delta) /. (2. *. Float.of_int trials))
