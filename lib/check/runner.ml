module Json = Suu_service.Json

type failure = {
  property : string;
  case_index : int;
  case_seed : int;
  message : string;
  original : Case.t;
  shrunk : Case.t;
  shrunk_message : string;
  shrink_steps : int;
}

type prop_report = {
  prop : Property.t;
  cases : int;
  skipped : int;
  failure : failure option;
}

type report = {
  props : prop_report list;
  total_cases : int;
  total_skipped : int;
  failures : failure list;
}

let ok r = r.failures = []

(* FNV-1a over the property name, then mix in seed and index with odd
   multipliers. Hand-rolled (rather than Hashtbl.hash) so derived case
   seeds are stable across OCaml versions — cram output and CI replay
   lines depend on them. *)
let fnv1a s =
  String.fold_left
    (fun h c -> (h lxor Char.code c) * 0x01000193 land max_int)
    0x811c9dc5 s

let case_seed ~seed ~name ~index =
  let h = fnv1a name in
  (seed * 0x9e3779b1) lxor (h * 0x85ebca6b) lxor (index * 0xc2b2ae35)
  |> abs

let shrink_failure ?(budget = 500) (prop : Property.t) case message =
  let budget = ref budget in
  let rec improve case message steps =
    let rec first seq =
      if !budget <= 0 then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (candidate, rest) -> (
            decr budget;
            match prop.Property.check candidate with
            | Property.Fail msg -> Some (candidate, msg)
            | Property.Pass | Property.Skip _ -> first rest)
    in
    match first (Gen.shrink case) with
    | Some (candidate, msg) -> improve candidate msg (steps + 1)
    | None -> (case, message, steps)
  in
  improve case message 0

let run_property ~seed ~count (prop : Property.t) =
  let skipped = ref 0 in
  let rec go k =
    if k >= count then { prop; cases = count; skipped = !skipped; failure = None }
    else
      let cs = case_seed ~seed ~name:prop.Property.name ~index:k in
      let case = Gen.case (Suu_prob.Rng.create cs) prop.Property.sizes in
      match prop.Property.check case with
      | Property.Pass -> go (k + 1)
      | Property.Skip _ ->
          incr skipped;
          go (k + 1)
      | Property.Fail message ->
          let shrunk, shrunk_message, shrink_steps =
            shrink_failure prop case message
          in
          {
            prop;
            cases = k + 1;
            skipped = !skipped;
            failure =
              Some
                {
                  property = prop.Property.name;
                  case_index = k;
                  case_seed = cs;
                  message;
                  original = case;
                  shrunk;
                  shrunk_message;
                  shrink_steps;
                };
          }
  in
  go 0

let run ?(on_property = fun _ -> ()) ~seed ~count props =
  let reports =
    List.map
      (fun p ->
        let r = run_property ~seed ~count p in
        on_property r;
        r)
      props
  in
  {
    props = reports;
    total_cases = List.fold_left (fun acc r -> acc + r.cases) 0 reports;
    total_skipped = List.fold_left (fun acc r -> acc + r.skipped) 0 reports;
    failures = List.filter_map (fun r -> r.failure) reports;
  }

let repro_json f =
  Printf.sprintf "{\"property\":%s,\"seed\":%d,\"case\":%s}"
    (Json.to_string (Json.Str f.property))
    f.case_seed
    (Case.to_json f.shrunk)

let replay line =
  let ( let* ) = Result.bind in
  let* json = Json.of_string line in
  let* name =
    match Option.bind (Json.member "property" json) Json.to_str with
    | Some n -> Ok n
    | None -> Error "repro: missing \"property\""
  in
  let* prop =
    match Registry.find name with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "repro: unknown property %S" name)
  in
  let* case_json =
    match Json.member "case" json with
    | Some c -> Ok (Json.to_string c)
    | None -> Error "repro: missing \"case\""
  in
  let* case = Case.of_json case_json in
  if not (Case.is_valid case) then Error "repro: case is not a valid instance"
  else Ok (prop, case)
