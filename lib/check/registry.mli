(** The registered conformance properties.

    Every paper guarantee the codebase claims — MSM-ALG's 1/3 bound
    (Theorem 3.2), MSM-E-ALG's 1/3 bound (Lemma 3.4), the mass
    accumulation of Algorithm 2 (Lemma 3.5) with Proposition 2.1's
    sandwich, exact-chain/Monte-Carlo agreement, leapfrog/naive
    distribution equivalence — plus structural invariants (typed
    validation, tie-break determinism, relabeling invariance of optima,
    monotonicity of TOPT in p, serialisation round-trips, parallel
    estimator identity) is certified here on seeded random instances. *)

val all : Property.t list
(** Every registered property, in report order (includes hidden ones). *)

val visible : Property.t list
(** The default run: {!all} without hidden properties. *)

val find : string -> Property.t option
(** Lookup by name. *)
