(** Conformance properties.

    A property is a named predicate over generated cases. [check] must be
    deterministic given the case (all auxiliary randomness drawn from
    {!Case.aux_rng}) — the shrinker and the replay workflow depend on a
    failing case failing again. *)

type outcome =
  | Pass
  | Fail of string
      (** counterexample explanation, shown verbatim in reports *)
  | Skip of string
      (** the case is outside the oracle's budget (e.g. brute force too
          large); counted separately, never a failure *)

type t = {
  name : string;  (** stable identifier, used by [-p] selection and repro *)
  doc : string;  (** one-line statement of the certified property *)
  sizes : Gen.sizes;  (** instance budget its oracles can afford *)
  hidden : bool;
      (** excluded from default runs; only runs when named explicitly
          (the deliberately-broken demo property) *)
  check : Case.t -> outcome;
}

val make :
  ?hidden:bool ->
  ?sizes:Gen.sizes ->
  name:string ->
  doc:string ->
  (Case.t -> outcome) ->
  t
(** [sizes] defaults to {!Gen.default}. *)

val failf : ('a, unit, string, outcome) format4 -> 'a
(** [Fail] with a formatted message. *)

val all : (unit -> bool) -> string -> outcome
(** First-failure conjunction helper: [Pass] when the thunk returns
    [true], otherwise [Fail] with the given label. *)
