module Json = Suu_service.Json

type t = {
  p : float array array;
  edges : (int * int) list;
  aux_seed : int;
}

let make ~p ~edges ~aux_seed =
  { p; edges = List.sort_uniq compare edges; aux_seed }

let m t = Array.length t.p
let n t = if m t = 0 then 0 else Array.length t.p.(0)

let is_valid t =
  let mm = m t and nn = n t in
  mm >= 1 && nn >= 1
  && Array.for_all
       (fun row ->
         Array.length row = nn
         && Array.for_all (fun v -> Float.is_finite v && v >= 0. && v <= 1.) row)
       t.p
  && (let capable = Array.make nn false in
      Array.iter
        (Array.iteri (fun j v -> if v > 0. then capable.(j) <- true))
        t.p;
      Array.for_all Fun.id capable)
  && List.for_all
       (fun (u, v) -> u <> v && u >= 0 && u < nn && v >= 0 && v < nn)
       t.edges
  && match Suu_dag.Dag.create ~n:nn t.edges with
     | (_ : Suu_dag.Dag.t) -> true
     | exception Invalid_argument _ -> false

let instance t =
  Suu_core.Instance.create ~p:t.p ~dag:(Suu_dag.Dag.create ~n:(n t) t.edges)

let aux_rng t = Suu_prob.Rng.create t.aux_seed

let summary t =
  Printf.sprintf "n=%d m=%d edges=%d" (n t) (m t) (List.length t.edges)

let equal a b =
  a.aux_seed = b.aux_seed && a.edges = b.edges
  && Array.length a.p = Array.length b.p
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2
              (fun x y ->
                Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
              ra rb)
       a.p b.p

(* Shortest decimal form that parses back to the same float: shrunk
   cases print as "0.5", not "0.5000000000000000", while arbitrary
   generated probabilities still round-trip exactly. *)
let float_repr x =
  let exact fmt =
    let s = Printf.sprintf fmt x in
    if Float.equal (float_of_string s) x then Some s else None
  in
  match exact "%.12g" with
  | Some s -> s
  | None -> (
      match exact "%.15g" with Some s -> s | None -> Printf.sprintf "%.17g" x)

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "{\"n\":%d,\"m\":%d,\"p\":[" (n t) (m t));
  Array.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (float_repr v))
        row;
      Buffer.add_char buf ']')
    t.p;
  Buffer.add_string buf "],\"edges\":[";
  List.iteri
    (fun k (u, v) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" u v))
    t.edges;
  Buffer.add_string buf (Printf.sprintf "],\"aux\":%d}" t.aux_seed);
  Buffer.contents buf

let of_json s =
  let ( let* ) = Result.bind in
  let field name conv json =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "case: missing or malformed %S" name)
  in
  let* json = Json.of_string s in
  let* nn = field "n" Json.to_int json in
  let* mm = field "m" Json.to_int json in
  let* p_rows =
    field "p" (function Json.List l -> Some l | _ -> None) json
  in
  let* aux_seed = field "aux" Json.to_int json in
  let* edges_json =
    match Json.member "edges" json with
    | None | Some Json.Null -> Ok []
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "case: malformed \"edges\""
  in
  let* p =
    if List.length p_rows <> mm then Error "case: p has wrong row count"
    else
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          match row with
          | Json.List cells when List.length cells = nn ->
              let* cells =
                List.fold_left
                  (fun acc c ->
                    let* acc = acc in
                    match Json.to_num c with
                    | Some v -> Ok (v :: acc)
                    | None -> Error "case: non-numeric probability")
                  (Ok []) cells
              in
              Ok (Array.of_list (List.rev cells) :: acc)
          | _ -> Error "case: p row has wrong length")
        (Ok []) p_rows
      |> Result.map (fun rows -> Array.of_list (List.rev rows))
  in
  let* edges =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match e with
        | Json.List [ u; v ] -> (
            match (Json.to_int u, Json.to_int v) with
            | Some u, Some v -> Ok ((u, v) :: acc)
            | _ -> Error "case: non-integer edge endpoint")
        | _ -> Error "case: edge is not a pair")
      (Ok []) edges_json
    |> Result.map List.rev
  in
  Ok (make ~p ~edges ~aux_seed)
