(** Property execution: seeded generation, greedy shrinking, reporting.

    The case for property [P], index [k] under master seed [s] is derived
    from a hash of [(s, P.name, k)], so runs are reproducible, properties
    can be re-run in isolation ([-p]) without changing anyone's cases,
    and a failure report pins everything needed to replay it. *)

type failure = {
  property : string;
  case_index : int;  (** which generated case failed first *)
  case_seed : int;  (** derived seed the case was generated from *)
  message : string;  (** original counterexample explanation *)
  original : Case.t;
  shrunk : Case.t;  (** locally minimal failing case *)
  shrunk_message : string;
  shrink_steps : int;  (** accepted shrink steps *)
}

type prop_report = {
  prop : Property.t;
  cases : int;  (** cases executed (including skipped ones) *)
  skipped : int;
  failure : failure option;  (** a property stops at its first failure *)
}

type report = {
  props : prop_report list;
  total_cases : int;
  total_skipped : int;
  failures : failure list;
}

val ok : report -> bool

val case_seed : seed:int -> name:string -> index:int -> int
(** The derived per-case seed (FNV-1a over the property name mixed with
    the master seed and index). Exposed for tests. *)

val run_property : seed:int -> count:int -> Property.t -> prop_report

val run :
  ?on_property:(prop_report -> unit) ->
  seed:int ->
  count:int ->
  Property.t list ->
  report
(** Run every property for [count] cases each. [on_property] fires as
    each property finishes (progress reporting). *)

val shrink_failure :
  ?budget:int -> Property.t -> Case.t -> string -> Case.t * string * int
(** Greedy minimisation: repeatedly adopt the first shrink candidate that
    still fails, until none does or [budget] (default 500) candidate
    evaluations are spent. Returns the minimal case, its failure message
    and the number of accepted steps. *)

val repro_json : failure -> string
(** One-line replayable counterexample:
    [{"property":..,"seed":..,"case":{..}}] — the line printed by the
    CLI and consumed by [suu check --replay]. *)

val replay : string -> (Property.t * Case.t, string) result
(** Parse a {!repro_json} line back into the property (looked up in the
    registry) and the case to run it on. *)
