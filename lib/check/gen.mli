(** Seeded random case generation and shrinking.

    Generators draw everything from the supplied {!Suu_prob.Rng.t}, so a
    case is a pure function of its seed. Each draw picks a probability
    style (uniform, power-law near 0, dense-high, sparse, degenerate
    p ∈ {0,1}, mixed) and a DAG family (independent, chains, in/out
    forests, polytrees, layered, sparse/dense general), then repairs
    capability so every case is {!Case.is_valid}.

    Shrinking proposes strictly simpler valid cases (fewer jobs,
    machines or edges; probabilities snapped to 1, 0 or two decimals;
    auxiliary seed zeroed), simplest-reduction first; the runner greedily
    re-checks candidates until a failing case is locally minimal. *)

type sizes = {
  min_jobs : int;
  max_jobs : int;
  min_machines : int;
  max_machines : int;
  independent_only : bool;  (** suppress precedence edges *)
  min_prob : float;
      (** positive entries are raised to at least this, bounding horizons
          for properties that simulate or sum survival series *)
}

val default : sizes
(** Up to 12 jobs × 4 machines — structural properties with no
    exponential oracle. *)

val small : sizes
(** Up to 6 jobs × 3 machines — exact-chain oracles (2^n states). *)

val tiny : sizes
(** Up to 4 jobs × 2 machines — brute-force enumeration oracles. *)

val case : Suu_prob.Rng.t -> sizes -> Case.t

val oblivious : Suu_prob.Rng.t -> Case.t -> Suu_core.Oblivious.t
(** A random oblivious schedule for the case's instance: short random
    prefix, non-empty random cycle, occasional idling, jobs drawn
    uniformly (including pairs with [p_ij = 0] and not-yet-eligible jobs
    — the execution semantics must clip them, and properties should
    exercise that). *)

val shrink : Case.t -> Case.t Seq.t
(** Valid, strictly simpler candidates. Every accepted candidate
    decreases the measure (jobs, machines, edges, non-{0,1} entries,
    long-decimal entries, non-zero aux), so greedy shrinking
    terminates. *)
