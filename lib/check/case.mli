(** Concrete test cases for the conformance checker.

    A case is the raw material of one property check: a probability
    matrix, a precedence edge list and an auxiliary seed from which the
    property derives any extra randomness it needs (schedules, job
    subsets, hostile mutations, Monte-Carlo seeds). Keeping the case as
    plain data — rather than a constructed {!Suu_core.Instance.t} — is
    what makes shrinking and JSON repro lines possible: the shrinker
    edits the data, and a failure report serialises it losslessly. *)

type t = {
  p : float array array;  (** machine-major success probabilities *)
  edges : (int * int) list;  (** precedence edges, sorted and deduplicated *)
  aux_seed : int;
      (** seed for the property's auxiliary randomness; determinism of a
          check given its case hinges on drawing everything from here *)
}

val make : p:float array array -> edges:(int * int) list -> aux_seed:int -> t
(** Normalises the edge list (sort + dedup); no validation. *)

val n : t -> int
(** Number of jobs (row length of [p]; 0 when there are no machines). *)

val m : t -> int
(** Number of machines. *)

val is_valid : t -> bool
(** Whether {!instance} would succeed: at least one machine, rectangular
    [p] with entries in [\[0,1\]], every job capable, edges in range and
    acyclic. Generators only emit valid cases and the shrinker only
    proposes valid ones; properties may rely on it. *)

val instance : t -> Suu_core.Instance.t
(** Build the instance. @raise Suu_core.Instance.Invalid or
    [Invalid_argument] when the case is not {!is_valid}. *)

val aux_rng : t -> Suu_prob.Rng.t
(** Fresh generator derived from [aux_seed]; equal cases give equal
    streams. *)

val summary : t -> string
(** One-line shape summary, e.g. ["n=3 m=2 edges=1"]. *)

val equal : t -> t -> bool

val to_json : t -> string
(** One-line JSON encoding
    [{"n":..,"m":..,"p":[[..],..],"edges":[[u,v],..],"aux":..}].
    Floats are printed with enough digits to round-trip exactly, so
    [of_json (to_json c)] reconstructs [c] bit for bit. *)

val of_json : string -> (t, string) result
