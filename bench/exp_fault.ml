(* EXP-FAULT: service throughput and tail latency under injected faults.

   The fault-tolerance machinery (supervision, retry, drain) must be
   cheap when idle and graceful under fire: at a 0% fault rate the
   supervised pool should match the plain service's throughput, and as
   the crash/transient rate climbs to 10% the run must complete every
   request — crashes answered, transients retried, nothing hung — with
   bounded degradation. Each rate runs the same deterministic workload
   under the same fault seed, so the readings are reproducible. *)

module Rng = Suu_prob.Rng
module Io = Suu_harness.Io
module Json = Suu_service.Json
module Fault = Suu_service.Fault
module Service = Suu_service.Service
module Metrics = Suu_service.Metrics
module W = Suu_workloads.Workload

let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let requests ~count ~trials =
  let rng = Rng.create (Bench_common.master_seed lxor 0xfa17) in
  List.init count (fun k ->
      let w =
        match k mod 3 with
        | 0 -> W.grid_batch (Rng.split rng) ~n:16 ~m:4
        | 1 -> W.grid_workflow (Rng.split rng) ~n:16 ~m:4 ~stages:4
        | _ -> W.project (Rng.split rng) ~n:12 ~m:4
      in
      Printf.sprintf
        {|{"op":"solve","id":"r%d","trials":%d,"seed":%d,"instance":"%s"}|} k
        trials (k + 1)
        (escaped (Io.to_string w.W.instance)))

let config ~fault =
  {
    Service.default_config with
    Service.workers = 4;
    queue_capacity = 4096;
    cache_capacity = 0;
    default_trials = 100;
    default_seed = 1;
    default_deadline_ms = None;
    (* Generous budget: at 10% crash rate every crash must be survivable
       or the tail of the workload drains as "unavailable". *)
    max_restarts = 1024;
    retries = 2;
    retry_backoff_ms = 0.5;
    fault;
  }

let run () =
  Bench_common.section "EXP-FAULT: serving under injected faults";
  let trials = Bench_common.trials in
  let count = 96 in
  let lines = requests ~count ~trials in
  let rates = [ 0.0; 0.01; 0.10 ] in
  let rows =
    List.map
      (fun rate ->
        let fault =
          { Fault.none with Fault.seed = 13; crash = rate; transient = rate }
        in
        let start = Unix.gettimeofday () in
        let responses, report = Service.run_lines (config ~fault) lines in
        let elapsed = Unix.gettimeofday () -. start in
        (* The headline guarantee: every request answered, none dropped,
           however many workers died along the way. *)
        assert (List.length responses = count);
        let m = report.Service.metrics in
        assert (
          m.Metrics.ok + m.Metrics.errors + m.Metrics.timeouts
          + m.Metrics.rejected
          = count);
        let p95 =
          match m.Metrics.latency with
          | Some l -> l.Metrics.p95_ms
          | None -> Float.nan
        in
        (rate, elapsed, Float.of_int count /. elapsed, p95, m))
      rates
  in
  Bench_common.table
    ~title:"faulty serving (96 requests, 4 workers, crash+transient at rate)"
    ~header:
      [
        "fault rate"; "elapsed s"; "req/s"; "p95 ms"; "ok"; "crashes";
        "restarts"; "retries";
      ]
    (List.map
       (fun (rate, elapsed, rps, p95, m) ->
         [
           Printf.sprintf "%g%%" (100. *. rate);
           Printf.sprintf "%.3f" elapsed;
           Printf.sprintf "%.0f" rps;
           Printf.sprintf "%.2f" p95;
           string_of_int m.Metrics.ok;
           string_of_int m.Metrics.worker_crashes;
           string_of_int m.Metrics.restarts;
           string_of_int m.Metrics.retries;
         ])
       rows);
  Bench_common.note
    "JSON summary: %s"
    (Json.to_string
       (Json.Obj
          [
            ("bench", Json.Str "exp_fault");
            ("requests", Json.int count);
            ("trials", Json.int trials);
            ("workers", Json.int 4);
            ( "rates",
              Json.List
                (List.map
                   (fun (rate, elapsed, rps, p95, m) ->
                     Json.Obj
                       [
                         ("fault_rate", Json.Num rate);
                         ("elapsed_s", Json.Num elapsed);
                         ("rps", Json.Num rps);
                         ("p95_ms", Json.Num p95);
                         ("ok", Json.int m.Metrics.ok);
                         ("worker_crashes", Json.int m.Metrics.worker_crashes);
                         ("restarts", Json.int m.Metrics.restarts);
                         ("retries", Json.int m.Metrics.retries);
                       ])
                   rows) );
          ]))
