(* EXP-RACE — the improved family (suu-imp, arXiv:0802.2418 flavour)
   head-to-head against the Lin–Rajaraman family on every DAG shape.

   Per shape: one seeded instance; each contender builds its policy
   (wall-clock recorded) and is Monte-Carlo estimated on the shared
   trial budget. Ratios are against the LP-free lower bound
   ({!Suu_algo.Bounds}), and the "imp/old" column is the new family's
   mean over the best old-family mean — below 1.0 the newcomer wins.

   The rows are merged into the BENCH_PERF.json artifact under a
   top-level "race" key (the perf writer preserves it, so `perf` and
   `exp-race` can run in either order in CI's perf-smoke job). *)

open Bench_common
module Json = Suu_service.Json
module Policy = Suu_core.Policy

let shapes =
  [
    ("independent", fun _rng n -> Suu_dag.Gen.independent n);
    ("chains", fun rng n -> Suu_dag.Gen.chains rng ~n ~chains:4);
    ("out-forest", fun rng n -> Suu_dag.Gen.out_forest rng ~n ~trees:3);
    ("polytree", fun rng n -> Suu_dag.Gen.polytree_forest rng ~n ~trees:3);
    ( "layered",
      fun rng n -> Suu_dag.Gen.layered rng ~n ~layers:4 ~edge_prob:0.3 );
    ("general", fun rng n -> Suu_dag.Gen.random_dag rng ~n ~edge_prob:0.15);
  ]

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

(* The contenders on one instance: the new family first, then the old
   family's adaptive default, its combinatorial oblivious core, and the
   paper's per-shape oblivious column (LP for independent, pipelines for
   chains/trees/forests, layered heuristic for general DAGs). *)
let contenders inst =
  [
    ("suu-imp", fun () -> Suu_algo.Improved.policy inst);
    ("suu-i-alg", fun () -> Suu_algo.Suu_i.policy inst);
    ("suu-i-obl", fun () -> Suu_algo.Suu_i_obl.policy inst);
    ( Suu_algo.Solver.algorithm_name ~kind:`Oblivious ~allow_heuristic:true
        inst,
      fun () -> Suu_algo.Solver.solve ~kind:`Oblivious ~allow_heuristic:true inst
    );
  ]

let race_shape (shape, gen) =
  let n = 18 and m = 5 in
  let rng = Rng.create (master_seed + Hashtbl.hash shape) in
  let dag = gen rng n in
  let inst =
    uniform_instance (master_seed + (17 * String.length shape)) ~n ~m ~lo:0.15
      ~hi:0.85 dag
  in
  let lb = lower_bound inst in
  let runs =
    List.map
      (fun (name, build) ->
        let policy, build_ms = timed build in
        let (mean, ci), est_ms = timed (fun () -> mean_makespan inst policy) in
        (name, mean, ci, mean /. lb, build_ms, est_ms))
      (contenders inst)
  in
  let imp_mean =
    match runs with (_, mean, _, _, _, _) :: _ -> mean | [] -> Float.nan
  in
  let best_old =
    List.fold_left
      (fun acc (name, mean, _, _, _, _) ->
        if String.equal name "suu-imp" then acc else Float.min acc mean)
      Float.infinity runs
  in
  let imp_over_old = imp_mean /. best_old in
  let row_json =
    Json.Obj
      [
        ("shape", Json.Str shape);
        ("n", Json.int n);
        ("m", Json.int m);
        ("lower_bound", Json.Num lb);
        ("imp_over_best_old", Json.Num imp_over_old);
        ( "contenders",
          Json.List
            (List.map
               (fun (name, mean, ci, ratio, build_ms, est_ms) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("mean_makespan", Json.Num mean);
                     ("ci95", Json.Num ci);
                     ("ratio_vs_lb", Json.Num ratio);
                     ("build_ms", Json.Num build_ms);
                     ("estimate_ms", Json.Num est_ms);
                   ])
               runs) );
      ]
  in
  let cells =
    List.concat_map
      (fun (name, mean, _, ratio, build_ms, _) ->
        [
          Printf.sprintf "%s %.1f (%.2fx, %.1fms)" name mean ratio build_ms;
        ])
      runs
  in
  ([ shape; Printf.sprintf "%.2f" lb; Printf.sprintf "%.2f" imp_over_old ]
   @ cells,
    row_json )

(* Merge the rows into the perf artifact under "race", preserving every
   other field a prior `perf` run wrote (and writing a minimal envelope
   when exp-race runs standalone). *)
let merge_into_artifact rows =
  let path = Perf.json_path () in
  let existing_fields =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error _ -> None
    | text -> (
        match Json.of_string text with
        | Ok (Json.Obj fields) -> Some fields
        | Ok _ | Error _ -> None)
  in
  let fields =
    match existing_fields with
    | Some fields -> List.filter (fun (k, _) -> not (String.equal k "race")) fields
    | None ->
        [
          ("schema", Json.Str "suu-bench-perf/2");
          ("schema_version", Json.int 2);
          ("unix_time", Json.Num (Unix.time ()));
        ]
  in
  let doc = Json.Obj (fields @ [ ("race", Json.List rows) ]) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "merged race rows into %s (%d shapes)\n" path (List.length rows)

let run () =
  section
    "EXP-RACE: improved family (suu-imp) vs Lin-Rajaraman, head-to-head";
  let rows = List.map race_shape shapes in
  table ~title:"EXP-RACE means, ratios vs LB, and build wall-clock"
    ~header:
      ([ "shape"; "LB"; "imp/old" ]
      @ [ "suu-imp"; "suu-i-alg"; "suu-i-obl"; "oblivious column" ])
    (List.map fst rows);
  merge_into_artifact (List.map snd rows);
  note
    "expected: suu-imp within a small factor of the old family everywhere, \
     ahead of suu-i-obl on dense independent instances (concentration \
     tail), one scheme across all six shapes."
