(* PERF — Bechamel micro-benchmarks of every major component: one
   Test.make per substrate/stage, reported as estimated ns per run. *)

open Bench_common
module Test = Bechamel.Test
module Staged = Bechamel.Staged

let witness = Bechamel.Toolkit.Instance.monotonic_clock

let indep_instance n m =
  uniform_instance (master_seed + 123) ~n ~m ~lo:0.1 ~hi:0.9
    (Suu_dag.Dag.empty n)

let chain_instance n m chains =
  let dag = Suu_dag.Gen.chains (Rng.create 17) ~n ~chains in
  uniform_instance (master_seed + 124) ~n ~m ~lo:0.1 ~hi:0.9 dag

let tests () =
  let inst64 = indep_instance 64 16 in
  let jobs64 = Array.make 64 true in
  let chain_inst = chain_instance 20 5 4 in
  let chains = Suu_dag.Classify.chain_partition (Suu_core.Instance.dag chain_inst) in
  let frac = Suu_algo.Lp_relax.solve_chains chain_inst ~chains in
  let integral = Suu_algo.Rounding.round chain_inst frac in
  let pseudos = Suu_algo.Rounding.chain_pseudos chain_inst integral in
  let big_tree = Suu_dag.Gen.binary_out_tree ~n:1023 in
  let policy = Suu_algo.Suu_i.policy inst64 in
  (* Oblivious regimen on the same instance: exercises the engine's
     geometric-leapfrog fast path (the adaptive policy above exercises
     the naive stepper). *)
  let obl_policy = Suu_algo.Suu_i_obl.policy inst64 in
  let tiny = indep_instance 8 2 in
  [
    Test.make ~name:"msm_alg n=64 m=16"
      (Staged.stage (fun () -> Suu_algo.Msm.assign inst64 ~jobs:jobs64));
    Test.make ~name:"msm_e_alg n=64 m=16 t=1000"
      (Staged.stage (fun () ->
           Suu_algo.Msm_ext.allocate inst64 ~jobs:jobs64 ~t:1000));
    Test.make ~name:"lp1 solve n=20 m=5"
      (Staged.stage (fun () -> Suu_algo.Lp_relax.solve_chains chain_inst ~chains));
    Test.make ~name:"rounding n=20 m=5"
      (Staged.stage (fun () -> Suu_algo.Rounding.round chain_inst frac));
    Test.make ~name:"delay best-of-8"
      (Staged.stage (fun () ->
           Suu_algo.Delay.choose (Rng.create 3) ~tries:8
             ~ranges:(Suu_algo.Delay.auto_ranges pseudos)
             pseudos));
    Test.make ~name:"chain_decomp n=1023"
      (Staged.stage (fun () -> Suu_dag.Chain_decomp.decompose big_tree));
    Test.make ~name:"simulate run n=64 m=16 (adaptive)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.run (Rng.create 5) inst64 policy));
    Test.make ~name:"malewicz dp n=8 m=2"
      (Staged.stage (fun () -> Suu_algo.Malewicz.optimal_value tiny));
    (* The two [estimate_makespan] rows now route through the vectorized
       Lanes kernel (63 trials per word); the scalar rows below them run
       the same 200 trials through the per-trial paths, so the
       vector-vs-scalar ratio is visible in every PERF table (and gated:
       PERF-GATE fails below 4x). *)
    Test.make ~name:"200 MC trials sequential (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan ~trials:200 (Rng.create 3) inst64
             obl_policy));
    Test.make ~name:"200 MC trials sequential adaptive (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan ~trials:200 (Rng.create 3) inst64
             policy));
    Test.make ~name:"200 MC trials scalar range adaptive (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan_range ~seed:3 ~lo:0 ~hi:200 inst64
             policy));
    Test.make ~name:"200 MC trials scalar seeded oblivious (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan_seeded ~trials:200 ~seed:3 inst64
             obl_policy));
    (* Matched pair for the observability gate: the seeded estimator
       carries the ?observer seam and the engine counters; left disabled
       it must price the same as the scalar range row above, which runs
       the identical per-trial stepper without the seam (PERF-GATE
       asserts the ratio). *)
    Test.make ~name:"200 MC trials seeded adaptive, observer off (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan_seeded ~trials:200 ~seed:3 inst64
             policy));
    Test.make ~name:"200 MC trials on 4 domains (n=64 m=16)"
      (Staged.stage (fun () ->
           Suu_sim.Engine.estimate_makespan_parallel ~domains:4 ~trials:200
             ~seed:3 inst64 policy));
    Test.make ~name:"jobshop derandomized delays 16x48"
      (Staged.stage
         (let shop =
            Suu_jobshop.Jobshop.create ~machines:16
              (Array.init 48 (fun j ->
                   List.init 5 (fun k ->
                       {
                         Suu_jobshop.Jobshop.machine = (j + k) mod 16;
                         duration = 1 + (k mod 2);
                       })))
          in
          fun () -> Suu_jobshop.Jobshop.derandomized_delay shop));
    Test.make ~name:"maxflow clrs-style 200 nodes"
      (Staged.stage (fun () ->
           let g = Suu_flow.Maxflow.create 200 in
           let rng = Rng.create 11 in
           for _ = 1 to 800 do
             let u = Rng.int rng 200 and v = Rng.int rng 200 in
             if u <> v then
               ignore
                 (Suu_flow.Maxflow.add_edge g ~src:u ~dst:v
                    ~cap:(1 + Rng.int rng 20)
                   : Suu_flow.Maxflow.edge)
           done;
           Suu_flow.Maxflow.max_flow g ~source:0 ~sink:199));
  ]

let human_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Machine-readable mirror of the PERF table: one JSON object per
   benchmark (name, ns/run, r^2, samples) plus enough run metadata to
   compare artifacts across machines and commits. Written next to the
   human table so CI can upload it as an artifact; path overridable via
   SUU_BENCH_PERF_JSON. *)
let json_path () =
  match Sys.getenv_opt "SUU_BENCH_PERF_JSON" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_PERF.json"

(* Best-effort source identification for the artifact: `git describe`
   when the bench runs inside a checkout, "unknown" anywhere else (CI
   tarballs, stripped containers). Never fails the bench. *)
let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try In_channel.input_line ic with _ -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some d when String.trim d <> "" -> String.trim d
      | _ -> "unknown")

let write_json ~limit ~quota_s results =
  let module Json = Suu_service.Json in
  let num v = if Float.is_finite v then Json.Num v else Json.Null in
  (* A prior exp-race / exp-dyn run may have merged its rows into the
     artifact; rewriting the perf fields must not drop them (perf-smoke
     runs them in sequence and uploads one file). *)
  let preserved_race =
    match In_channel.with_open_text (json_path ()) In_channel.input_all with
    | exception Sys_error _ -> []
    | text -> (
        match Json.of_string text with
        | Ok doc ->
            List.filter_map
              (fun k ->
                Option.map (fun v -> (k, v)) (Json.member k doc))
              [ "race"; "dyn" ]
        | Error _ -> [])
  in
  let doc =
    Json.Obj
      ([
        ("schema", Json.Str "suu-bench-perf/2");
        ("schema_version", Json.int 2);
        ("git_describe", Json.Str (git_describe ()));
        ("unit", Json.Str "ns/run");
        ("ocaml", Json.Str Sys.ocaml_version);
        ("word_size", Json.int Sys.word_size);
        ( "recommended_domains",
          Json.int (Domain.recommended_domain_count ()) );
        ("bechamel_limit", Json.int limit);
        ("bechamel_quota_s", Json.Num quota_s);
        ("unix_time", Json.Num (Unix.time ()));
        ( "results",
          Json.List
            (List.map
               (fun (name, ns, r2, samples) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("ns_per_run", num ns);
                     ("r_square", num r2);
                     ("samples", Json.int samples);
                   ])
               results) );
      ]
      @ preserved_race)
  in
  let path = json_path () in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s (%d benchmarks)\n" path (List.length results)

let measure_elt cfg elt =
  let raw = Bechamel.Benchmark.run cfg [ witness ] elt in
  let ols =
    Bechamel.Analyze.OLS.ols ~bootstrap:0 ~r_square:true
      ~responder:(Bechamel.Measure.label witness)
      ~predictors:[| Bechamel.Measure.run |]
      raw.Bechamel.Benchmark.lr
  in
  let estimate =
    match Bechamel.Analyze.OLS.estimates ols with
    | Some [ e ] -> e
    | _ -> Float.nan
  in
  let r2 =
    match Bechamel.Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
  in
  let samples = raw.Bechamel.Benchmark.stats.Bechamel.Benchmark.samples in
  (Test.Elt.name elt, estimate, r2, samples)

let bench_cfg ~limit ~quota_s =
  Bechamel.Benchmark.cfg ~limit ~quota:(Bechamel.Time.second quota_s) ~kde:None
    ()

let run () =
  section "PERF: Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let limit = 2000 and quota_s = 0.5 in
  let cfg = bench_cfg ~limit ~quota_s in
  let results = ref [] in
  List.iter
    (fun test ->
      List.iter
        (fun elt -> results := measure_elt cfg elt :: !results)
        (Test.elements test))
    (tests ());
  let results = List.rev !results in
  table ~title:"PERF component timings"
    ~header:[ "component"; "time/run"; "r^2"; "samples" ]
    (List.map
       (fun (name, ns, r2, samples) ->
         [ name; human_ns ns; Printf.sprintf "%.4f" r2; string_of_int samples ])
       results);
  write_json ~limit ~quota_s results

(* PERF-GATE — two in-process assertions, both min-of-rounds: a machine
   that is merely noisy shows at least one clean round, a real
   regression shows none. A BENCH_PERF.json left by a prior `perf` run
   (same process conventions, same machine in CI) contributes its
   recorded rows as an extra round, so the uploaded artifact is itself
   gated. Exits nonzero on failure so the CI perf-smoke job turns red.

   1. Observer seam: the seeded adaptive row carries the ?observer seam
      and the engine counters; with no observer armed it must price
      within SUU_PERF_GATE_PCT (default 2%) of the scalar range row,
      which runs the identical per-trial stepper without the seam.
   2. Vectorized kernel: the trial-batched [estimate_makespan] rows
      (adaptive greedy and oblivious) must beat their scalar per-trial
      counterparts by at least SUU_PERF_VECTOR_GATE x (default 4; the
      measured margin is well above — see EXPERIMENTS.md). *)

let scalar_adaptive_row = "200 MC trials scalar range adaptive (n=64 m=16)"
let seeded_row = "200 MC trials seeded adaptive, observer off (n=64 m=16)"
let vector_adaptive_row = "200 MC trials sequential adaptive (n=64 m=16)"
let vector_oblivious_row = "200 MC trials sequential (n=64 m=16)"
let scalar_oblivious_row = "200 MC trials scalar seeded oblivious (n=64 m=16)"

(* The recorded ns/run for each named row of a prior perf run's JSON
   artifact, when one is readable. *)
let recorded_rows () =
  let module Json = Suu_service.Json in
  match In_channel.with_open_text (json_path ()) In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
      match Json.of_string text with
      | Error _ -> None
      | Ok doc ->
          let rows =
            match Json.member "results" doc with
            | Some (Json.List rows) -> rows
            | _ -> []
          in
          let ns_of name =
            List.find_map
              (fun row ->
                match (Json.member "name" row, Json.member "ns_per_run" row)
                with
                | Some (Json.Str n), Some v when String.equal n name ->
                    Json.to_num v
                | _ -> None)
              rows
          in
          Some ns_of)

let recorded_ratio ~num ~den =
  match recorded_rows () with
  | None -> None
  | Some ns_of -> (
      match (ns_of num, ns_of den) with
      | Some n, Some d when d > 0. -> Some (n /. d)
      | _ -> None)

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string s with Failure _ -> default)
  | _ -> default

(* The ns ratio [num_row]/[den_row], measured as matched in-process
   pairs over three rounds, plus the recorded artifact's pair when one
   is present. *)
let gate_rounds ~measure ~num_row ~den_row =
  let fresh () =
    let d = measure den_row in
    let n = measure num_row in
    n /. d
  in
  let rounds =
    List.init 3 (fun k -> (Printf.sprintf "round %d" (k + 1), fresh ()))
  in
  match recorded_ratio ~num:num_row ~den:den_row with
  | Some r -> (json_path (), r) :: rounds
  | None -> rounds

let gate () =
  let inst64 = indep_instance 64 16 in
  let policy = Suu_algo.Suu_i.policy inst64 in
  let obl_policy = Suu_algo.Suu_i_obl.policy inst64 in
  let cfg = bench_cfg ~limit:2000 ~quota_s:0.5 in
  let time name f =
    let _, ns, _, _ =
      measure_elt cfg
        (List.hd (Test.elements (Test.make ~name (Staged.stage f))))
    in
    ns
  in
  let measure = function
    | row when String.equal row scalar_adaptive_row ->
        time row (fun () ->
            Suu_sim.Engine.estimate_makespan_range ~seed:3 ~lo:0 ~hi:200 inst64
              policy)
    | row when String.equal row seeded_row ->
        time row (fun () ->
            Suu_sim.Engine.estimate_makespan_seeded ~trials:200 ~seed:3 inst64
              policy)
    | row when String.equal row vector_adaptive_row ->
        time row (fun () ->
            Suu_sim.Engine.estimate_makespan ~trials:200 (Rng.create 3) inst64
              policy)
    | row when String.equal row vector_oblivious_row ->
        time row (fun () ->
            Suu_sim.Engine.estimate_makespan ~trials:200 (Rng.create 3) inst64
              obl_policy)
    | row when String.equal row scalar_oblivious_row ->
        time row (fun () ->
            Suu_sim.Engine.estimate_makespan_seeded ~trials:200 ~seed:3 inst64
              obl_policy)
    | row -> invalid_arg ("perf-gate: unknown row " ^ row)
  in
  let failures = ref 0 in
  (* 1. Observer seam: seeded/scalar-range overhead within budget. *)
  section "PERF-GATE: observer seam (disabled) vs scalar adaptive MC loop";
  let pct = env_float "SUU_PERF_GATE_PCT" 2. in
  let rounds =
    gate_rounds ~measure ~num_row:seeded_row ~den_row:scalar_adaptive_row
  in
  List.iter
    (fun (label, r) ->
      Printf.printf "  %-16s overhead %+.2f%%\n" label ((r -. 1.) *. 100.))
    rounds;
  let best =
    List.fold_left (fun acc (_, r) -> Float.min acc r) infinity rounds
  in
  let budget = 1. +. (pct /. 100.) in
  if Float.is_nan best || best > budget then begin
    Printf.printf
      "perf-gate: FAIL — disabled-observer overhead %+.2f%% exceeds %.1f%% on \
       %S\n"
      ((best -. 1.) *. 100.)
      pct scalar_adaptive_row;
    incr failures
  end
  else
    Printf.printf
      "perf-gate: ok — disabled-observer overhead %+.2f%% (budget %.1f%%)\n"
      ((best -. 1.) *. 100.)
      pct;
  (* 2. Vectorized kernel: scalar/vector speedup at least the floor,
     for both kernels. *)
  let floor = env_float "SUU_PERF_VECTOR_GATE" 4. in
  List.iter
    (fun (what, scalar_row, vector_row) ->
      section
        (Printf.sprintf "PERF-GATE: vectorized %s kernel vs scalar (want \
                         >= %.1fx)" what floor);
      let rounds =
        gate_rounds ~measure ~num_row:scalar_row ~den_row:vector_row
      in
      List.iter
        (fun (label, r) -> Printf.printf "  %-16s speedup %.1fx\n" label r)
        rounds;
      let best_speedup =
        List.fold_left (fun acc (_, r) -> Float.max acc r) neg_infinity rounds
      in
      if Float.is_nan best_speedup || best_speedup < floor then begin
        Printf.printf
          "perf-gate: FAIL — vectorized %s speedup %.1fx below the %.1fx \
           floor (%S vs %S)\n"
          what best_speedup floor vector_row scalar_row;
        incr failures
      end
      else
        Printf.printf "perf-gate: ok — vectorized %s speedup %.1fx (floor \
                       %.1fx)\n"
          what best_speedup floor)
    [
      ("adaptive", scalar_adaptive_row, vector_adaptive_row);
      ("oblivious", scalar_oblivious_row, vector_oblivious_row);
    ];
  if !failures > 0 then exit 1
