(* EXP-SHARD: throughput of the sharded coordinator (lib/shard) vs
   shard count.

   Two mechanisms, measured separately:

   (1) Cache-capacity scaling. Whole requests route by consistent
   hashing on the result-cache key, so N shards hold N disjoint LRU
   slices — the fleet's effective cache is the sum. The workload cycles
   a working set of distinct heavy solves that overflows one shard's
   cache but fits two: one shard recomputes every round (a cyclic scan
   through an LRU never hits), two shards answer rounds 2..R from
   memory. This is the win that survives a single hardware thread,
   where the CI gate (>= 1.7x at 2 shards) lives.

   (2) Trial-range fan-out. Large Monte-Carlo requests split into
   sub-jobs spread across the fleet. The merge is bit-identical at any
   shard count; the speedup is CPU-bound, so on a single hardware
   thread it measures pure coordination overhead (reported honestly —
   on a multi-core host this row scales with the shards). An opt-in
   variant (SUU_BENCH_SHARD_DOMAINS=<d>) reruns the fan-out with d
   estimate domains inside every worker, composing process-level
   sharding with in-process domain parallelism.

   Results: the usual tables plus a BENCH_SHARD.json artifact (path
   overridable via SUU_BENCH_SHARD_JSON) for CI upload. *)

module Rng = Suu_prob.Rng
module Io = Suu_harness.Io
module Json = Suu_service.Json
module Service = Suu_service.Service
module Coordinator = Suu_shard.Coordinator
module Client = Suu_shard.Client
module W = Suu_workloads.Workload

let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

(* The working set: distinct instances, hence distinct cache keys. *)
let working_set ~distinct =
  let rng = Rng.create (Bench_common.master_seed lxor 0x54a8d) in
  List.init distinct (fun k ->
      let w =
        match k mod 3 with
        | 0 -> W.grid_batch (Rng.split rng) ~n:16 ~m:4
        | 1 -> W.grid_workflow (Rng.split rng) ~n:16 ~m:4 ~stages:4
        | _ -> W.project (Rng.split rng) ~n:12 ~m:4
      in
      escaped (Io.to_string w.W.instance))

let solve ~id ~trials ~seed text =
  Printf.sprintf
    {|{"op":"solve","id":"%s","trials":%d,"seed":%d,"instance":"%s"}|} id
    trials seed text

let worker_config ?(domains = 1) ~cache () =
  {
    Service.default_config with
    Service.workers = 1;
    queue_capacity = 4096;
    cache_capacity = cache;
    default_trials = 100;
    default_seed = 1;
    default_deadline_ms = None;
    estimate_domains = domains;
  }

let coord_config ~shards ~split_threshold =
  {
    Coordinator.default_config with
    Coordinator.shards;
    split_threshold;
    heartbeat_ms = None;
  }

let timed ?domains cfg ~cache lines =
  let spawn i = Client.local ~id:i (worker_config ?domains ~cache ()) in
  let start = Unix.gettimeofday () in
  let responses, report = Coordinator.run_lines cfg ~spawn lines in
  let elapsed = Unix.gettimeofday () -. start in
  assert (List.length responses = List.length lines);
  (elapsed, responses, report)

(* The fleet's summed cache counters, from the merged stats response
   (the last line of the run). *)
let fleet_cache_counts last_line =
  let get name =
    match Json.of_string last_line with
    | Ok v ->
        Option.bind (Json.member "shard" v) (fun o ->
            Option.bind (Json.member name o) Json.to_int)
        |> Option.value ~default:0
    | Error _ -> 0
  in
  (get "cache_hits", get "cache_misses")

let run () =
  Bench_common.section "EXP-SHARD: sharded coordinator scaling";
  let trials = Bench_common.trials in
  Bench_common.note
    "recommended_domain_count: %d (on a single hardware thread only the \
     cache-capacity mechanism can show scaling; fan-out rows measure \
     coordination overhead there)"
    (Domain.recommended_domain_count ());
  (* --- cache-capacity scaling --- *)
  (* Heavy enough per solve that recompute dwarfs per-request overhead:
     the contrast under test is cache hit vs recompute, not codec
     throughput. *)
  let distinct = 24 and rounds = 8 and cache = 16 in
  let heavy_trials = trials * 4 in
  let set = working_set ~distinct in
  let cache_lines =
    List.concat_map
      (fun r ->
        List.mapi
          (fun k text ->
            let id = Printf.sprintf "r%d-%d" r k in
            solve ~id ~trials:heavy_trials ~seed:(k + 1) text)
          set)
      (List.init rounds Fun.id)
    @ [ {|{"op":"stats","id":"z"}|} ]
  in
  let requests = distinct * rounds in
  let capacity =
    List.map
      (fun shards ->
        let elapsed, responses, _ =
          timed
            (coord_config ~shards ~split_threshold:0)
            ~cache cache_lines
        in
        let hits, misses =
          fleet_cache_counts (List.nth responses (requests))
        in
        (shards, elapsed, Float.of_int requests /. elapsed, hits, misses))
      [ 1; 2; 4 ]
  in
  let base_rps =
    match capacity with (_, _, rps, _, _) :: _ -> rps | [] -> 1.
  in
  Bench_common.table
    ~title:
      (Printf.sprintf
         "cache-capacity scaling (%d distinct %d-trial solves x %d rounds, \
          cache %d per shard)"
         distinct heavy_trials rounds cache)
    ~header:
      [ "shards"; "elapsed s"; "req/s"; "hits"; "misses"; "speedup" ]
    (List.map
       (fun (s, elapsed, rps, hits, misses) ->
         [
           string_of_int s;
           Printf.sprintf "%.3f" elapsed;
           Printf.sprintf "%.0f" rps;
           string_of_int hits;
           string_of_int misses;
           Printf.sprintf "%.2f" (rps /. base_rps);
         ])
       capacity);
  (* --- trial-range fan-out --- *)
  let big = 6 and big_trials = trials * 8 in
  let fan_lines =
    List.mapi
      (fun k text ->
        solve ~id:(Printf.sprintf "f%d" k) ~trials:big_trials ~seed:(k + 1)
          text)
      (List.filteri (fun k _ -> k < big) set)
  in
  let fanout =
    List.map
      (fun shards ->
        let elapsed, _, report =
          timed
            (coord_config ~shards ~split_threshold:64)
            ~cache:0 fan_lines
        in
        (shards, elapsed, report.Coordinator.subjobs))
      [ 1; 2; 4 ]
  in
  Bench_common.table
    ~title:
      (Printf.sprintf "trial-range fan-out (%d solves x %d trials, split)"
         big big_trials)
    ~header:[ "shards"; "elapsed s"; "sub-jobs"; "req/s" ]
    (List.map
       (fun (s, elapsed, subjobs) ->
         [
           string_of_int s;
           Printf.sprintf "%.3f" elapsed;
           string_of_int subjobs;
           Printf.sprintf "%.1f" (Float.of_int big /. elapsed);
         ])
       fanout);
  (* --- multi-core fan-out (opt-in) --- *)
  (* Shards x in-worker estimate domains. Off by default: on a
     single-thread CI runner every configuration shares one core, so
     the row would only measure domain overhead. Opt in on a multi-core
     host with SUU_BENCH_SHARD_DOMAINS=<d>; the table reports the
     actual hardware parallelism alongside so a 1-thread result reads
     as what it is. *)
  let domains =
    match Sys.getenv_opt "SUU_BENCH_SHARD_DOMAINS" with
    | Some v -> ( match int_of_string_opt v with Some d when d > 1 -> Some d | _ -> None)
    | None -> None
  in
  let fanout_domains =
    match domains with
    | None ->
        Bench_common.note
          "multi-core fan-out row skipped (set SUU_BENCH_SHARD_DOMAINS=<d> on \
           a multi-core host to enable)";
        []
    | Some d ->
        let rows =
          List.map
            (fun shards ->
              let elapsed, _, report =
                timed ~domains:d
                  (coord_config ~shards ~split_threshold:64)
                  ~cache:0 fan_lines
              in
              (shards, elapsed, report.Coordinator.subjobs))
            [ 1; 2; 4 ]
        in
        Bench_common.table
          ~title:
            (Printf.sprintf
               "multi-core fan-out (%d solves x %d trials, %d domains per \
                worker, %d hardware threads)"
               big big_trials d
               (Domain.recommended_domain_count ()))
          ~header:[ "shards"; "elapsed s"; "sub-jobs"; "req/s" ]
          (List.map
             (fun (s, elapsed, subjobs) ->
               [
                 string_of_int s;
                 Printf.sprintf "%.3f" elapsed;
                 string_of_int subjobs;
                 Printf.sprintf "%.1f" (Float.of_int big /. elapsed);
               ])
             rows);
        rows
  in
  (* --- artifact --- *)
  let speedup2 =
    match capacity with
    | (_, _, r1, _, _) :: (_, _, r2, _, _) :: _ -> r2 /. r1
    | _ -> 0.
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "suu-bench-shard/1");
        ("trials", Json.int trials);
        ("heavy_trials", Json.int heavy_trials);
        ("distinct", Json.int distinct);
        ("rounds", Json.int rounds);
        ("cache_per_shard", Json.int cache);
        ( "recommended_domains",
          Json.int (Domain.recommended_domain_count ()) );
        ("unix_time", Json.Num (Unix.time ()));
        ( "capacity",
          Json.List
            (List.map
               (fun (s, elapsed, rps, hits, misses) ->
                 Json.Obj
                   [
                     ("shards", Json.int s);
                     ("elapsed_s", Json.Num elapsed);
                     ("rps", Json.Num rps);
                     ("cache_hits", Json.int hits);
                     ("cache_misses", Json.int misses);
                   ])
               capacity) );
        ("speedup_2_shards", Json.Num speedup2);
        ( "fanout",
          Json.List
            (List.map
               (fun (s, elapsed, subjobs) ->
                 Json.Obj
                   [
                     ("shards", Json.int s);
                     ("elapsed_s", Json.Num elapsed);
                     ("subjobs", Json.int subjobs);
                   ])
               fanout) );
        ( "fanout_domains_per_worker",
          Json.int (Option.value ~default:1 domains) );
        ( "fanout_domains",
          Json.List
            (List.map
               (fun (s, elapsed, subjobs) ->
                 Json.Obj
                   [
                     ("shards", Json.int s);
                     ("elapsed_s", Json.Num elapsed);
                     ("subjobs", Json.int subjobs);
                   ])
               fanout_domains) );
      ]
  in
  let path =
    match Sys.getenv_opt "SUU_BENCH_SHARD_JSON" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_SHARD.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Bench_common.note "JSON artifact: %s (speedup at 2 shards: %.2fx)" path
    speedup2
