(* Experiment suite entry point: regenerates every exhibit of the paper
   (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
   recorded paper-vs-measured readings).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- exp-a perf   # a subset
     SUU_BENCH_TRIALS=40 dune exec bench/main.exe   # faster, noisier *)

let experiments =
  [
    ("exp-a", Exp_a.run);
    ("exp-b", Exp_b.run);
    ("exp-c", Exp_c.run);
    ("exp-d", Exp_d.run);
    ("exp-e", Exp_e.run);
    ("exp-f", Exp_f.run);
    ("exp-g", Exp_g.run);
    ("exp-h", Exp_h.run);
    ("exp-i", Exp_i.run);
    ("exp-j", Exp_j.run);
    ("exp-k", Exp_k.run);
    ("exp-l", Exp_l.run);
    ("exp-serve", Exp_serve.run);
    ("exp-fault", Exp_fault.run);
    ("exp-shard", Exp_shard.run);
    ("exp-race", Exp_race.run);
    ("exp-dyn", Exp_dyn.run);
    ("perf", Perf.run);
    ("perf-gate", Perf.gate);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Printf.printf
    "SUU experiment suite (Lin-Rajaraman SPAA'07 reproduction); trials=%d\n"
    Bench_common.trials;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let start = Unix.gettimeofday () in
          run ();
          Printf.printf "[%s done in %.1fs]\n%!" name
            (Unix.gettimeofday () -. start)
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
