(* EXP-DYN — policy families in a dynamic environment: online geometric
   arrivals plus machine churn, swept over failure rates.

   One utilization-calibrated instance (UUniFast split over heterogeneous
   speed factors); per churn rate, every contender is Monte-Carlo
   estimated under the same release vector and deterministic up/down
   timeline. The adaptive families (suu-i-alg, suu-lzf) see the dynamics
   only through eligibility; suu-fixed commits to a static pinning and
   suu-imp to a static schedule, so the sweep measures how much
   adaptivity buys as the environment degrades.

   The rows are merged into the BENCH_PERF.json artifact under a
   top-level "dyn" key — preserved by Perf.write_json and by exp-race's
   own merge, so perf, exp-race and exp-dyn can run in any order in CI's
   perf-smoke job. *)

open Bench_common
module Json = Suu_service.Json
module Churn = Suu_dyn.Churn
module Workload = Suu_workloads.Workload

let churn_rates = [ 0.; 0.05; 0.15 ]
let repair = 6

let contenders inst =
  [
    ("suu-i-alg", Suu_algo.Suu_i.policy inst);
    ("suu-lzf", Suu_algo.Lzf.policy inst);
    ("suu-fixed", Suu_algo.Fixed_assignment.policy inst);
    ("suu-imp", Suu_algo.Improved.policy inst);
  ]

let race_rate inst ~releases ~rate =
  let m = Instance.m inst in
  let churn =
    if rate = 0. then Churn.none ~m
    else
      Churn.generate ~m
        { Churn.seed = master_seed; rate; repair; perm = 0.; steps = 256 }
  in
  let availability = if Churn.is_none churn then None else Some churn in
  let runs =
    List.map
      (fun (name, policy) ->
        let e =
          Engine.estimate_makespan_seeded ~releases ?availability:availability
            ~trials
            ~seed:(master_seed lxor Hashtbl.hash name)
            inst policy
        in
        ( name,
          e.Engine.stats.Suu_prob.Stats.mean,
          e.Engine.stats.Suu_prob.Stats.ci95,
          e.Engine.incomplete ))
      (contenders inst)
  in
  let row_json =
    Json.Obj
      [
        ("churn_rate", Json.Num rate);
        ("repair", Json.int repair);
        ("down_steps", Json.int (Churn.down_steps churn ~upto:256));
        ( "contenders",
          Json.List
            (List.map
               (fun (name, mean, ci, incomplete) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("mean_makespan", Json.Num mean);
                     ("ci95", Json.Num ci);
                     ("incomplete", Json.int incomplete);
                   ])
               runs) );
      ]
  in
  let cells =
    List.map
      (fun (name, mean, ci, incomplete) ->
        Printf.sprintf "%s %.1f ±%.1f (%d inc)" name mean ci incomplete)
      runs
  in
  (Printf.sprintf "%.2f" rate :: cells, row_json)

(* Merge the rows into the perf artifact under "dyn", preserving every
   other field a prior `perf` / `exp-race` run wrote (and writing a
   minimal envelope when exp-dyn runs standalone). *)
let merge_into_artifact rows =
  let path = Perf.json_path () in
  let existing_fields =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error _ -> None
    | text -> (
        match Json.of_string text with
        | Ok (Json.Obj fields) -> Some fields
        | Ok _ | Error _ -> None)
  in
  let fields =
    match existing_fields with
    | Some fields ->
        List.filter (fun (k, _) -> not (String.equal k "dyn")) fields
    | None ->
        [
          ("schema", Json.Str "suu-bench-perf/2");
          ("schema_version", Json.int 2);
          ("unix_time", Json.Num (Unix.time ()));
        ]
  in
  let doc = Json.Obj (fields @ [ ("dyn", Json.List rows) ]) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "merged dyn rows into %s (%d churn rates)\n" path
    (List.length rows)

let run () =
  section "EXP-DYN: policy families under online arrivals and machine churn";
  let n = 18 and m = 5 in
  let rng = Rng.create master_seed in
  let w =
    Workload.uunifast rng ~n ~m ~total_util:(0.4 *. float_of_int n)
      ~dag:(Suu_dag.Gen.independent n)
  in
  let inst = w.Workload.instance in
  let releases = Workload.arrivals rng ~n ~mean_gap:2. in
  let rows = List.map (fun rate -> race_rate inst ~releases ~rate) churn_rates in
  table ~title:"EXP-DYN mean makespans as churn increases"
    ~header:([ "rate" ] @ [ "suu-i-alg"; "suu-lzf"; "suu-fixed"; "suu-imp" ])
    (List.map fst rows);
  merge_into_artifact (List.map snd rows);
  note
    "expected: all families degrade gracefully as machines churn; the \
     adaptive index policies (suu-i-alg, suu-lzf) degrade slowest, the \
     static commitments (suu-fixed pinning, suu-imp schedule) pay the \
     largest penalty at high rates."
