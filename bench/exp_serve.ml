(* EXP-SERVE: throughput and cache behaviour of the batch scheduling
   service (lib/service).

   Two questions: (1) how does request throughput scale with the worker
   pool at 1, 2 and 4 domains on a mixed workload (solve + info +
   estimate requests over several DAG families), and (2) what does the
   LRU result cache buy on a repeat-heavy workload? Results are printed
   as the usual table plus a one-line JSON summary (the service's own
   codec), machine-readable like the CSV mirrors of the other
   experiments. *)

module Rng = Suu_prob.Rng
module Io = Suu_harness.Io
module Json = Suu_service.Json
module Service = Suu_service.Service
module W = Suu_workloads.Workload

let escaped text = String.concat "\\n" (String.split_on_char '\n' text)

let mixed_requests ~count ~trials =
  let rng = Rng.create (Bench_common.master_seed lxor 0x5e7e) in
  List.init count (fun k ->
      let w =
        match k mod 4 with
        | 0 -> W.grid_batch (Rng.split rng) ~n:16 ~m:4
        | 1 -> W.grid_workflow (Rng.split rng) ~n:16 ~m:4 ~stages:4
        | 2 -> W.project (Rng.split rng) ~n:12 ~m:4
        | _ -> W.grid_divide (Rng.split rng) ~n:15 ~m:4
      in
      let text = escaped (Io.to_string w.W.instance) in
      match k mod 5 with
      | 4 ->
          Printf.sprintf {|{"op":"info","id":"r%d","instance":"%s"}|} k text
      | _ ->
          Printf.sprintf
            {|{"op":"solve","id":"r%d","trials":%d,"seed":%d,"instance":"%s"}|}
            k trials (k + 1) text)

let config ~workers ~cache =
  {
    Service.default_config with
    Service.workers;
    queue_capacity = 4096;
    cache_capacity = cache;
    default_trials = 100;
    default_seed = 1;
    default_deadline_ms = None;
  }

let timed_run cfg lines =
  let start = Unix.gettimeofday () in
  let responses, report = Service.run_lines cfg lines in
  let elapsed = Unix.gettimeofday () -. start in
  assert (List.length responses = List.length lines);
  (elapsed, report)

let run () =
  Bench_common.section "EXP-SERVE: batch scheduling service";
  let trials = Bench_common.trials in
  let count = 64 in
  Bench_common.note
    "recommended_domain_count: %d (worker counts beyond it oversubscribe; \
     on a single hardware thread the pool cannot show scaling)"
    (Domain.recommended_domain_count ());
  let lines = mixed_requests ~count ~trials in
  (* Throughput scaling: distinct requests, cache off, so every request
     pays for its own solve. *)
  let scaling =
    List.map
      (fun workers ->
        let elapsed, _ = timed_run (config ~workers ~cache:0) lines in
        (workers, elapsed, Float.of_int count /. elapsed))
      [ 1; 2; 4 ]
  in
  Bench_common.table ~title:"service throughput (mixed workload)"
    ~header:[ "workers"; "requests"; "elapsed s"; "req/s" ]
    (List.map
       (fun (w, elapsed, rps) ->
         [
           string_of_int w;
           string_of_int count;
           Printf.sprintf "%.3f" elapsed;
           Printf.sprintf "%.0f" rps;
         ])
       scaling);
  (* Cache effect: the same workload submitted twice in one session. A
     warm second pass answers every cacheable request from memory. *)
  let doubled = lines @ lines in
  let cold, _ = timed_run (config ~workers:1 ~cache:0) doubled in
  let warm, report = timed_run (config ~workers:1 ~cache:256) doubled in
  let speedup = cold /. warm in
  Bench_common.table ~title:"cache effect (workload submitted twice, 1 worker)"
    ~header:[ "cache"; "elapsed s"; "hits"; "misses"; "speedup" ]
    [
      [ "off"; Printf.sprintf "%.3f" cold; "0"; "0"; "1.00" ];
      [
        "256";
        Printf.sprintf "%.3f" warm;
        string_of_int report.Service.cache_hits;
        string_of_int report.Service.cache_misses;
        Printf.sprintf "%.2f" speedup;
      ];
    ];
  Bench_common.note
    "JSON summary: %s"
    (Json.to_string
       (Json.Obj
          [
            ("bench", Json.Str "exp_serve");
            ("requests", Json.int count);
            ("trials", Json.int trials);
            ( "throughput",
              Json.List
                (List.map
                   (fun (w, elapsed, rps) ->
                     Json.Obj
                       [
                         ("workers", Json.int w);
                         ("elapsed_s", Json.Num elapsed);
                         ("rps", Json.Num rps);
                       ])
                   scaling) );
            ("cache_hits", Json.int report.Service.cache_hits);
            ("cache_misses", Json.int report.Service.cache_misses);
            ("cache_speedup", Json.Num speedup);
          ]))
